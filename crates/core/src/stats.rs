//! Router statistics counters.
//!
//! Counters are cheap, monotone, and safe to sample at any cycle; the
//! experiment harnesses difference successive samples to produce the paper's
//! time series (e.g. the per-connection cumulative service of Figure 7).

use std::collections::HashMap;

use rtr_types::ids::{ConnectionId, PORT_COUNT};

/// Monotone event counters for one router.
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    /// Time-constrained packets injected by the local processor.
    pub tc_injected: u64,
    /// Time-constrained packets that completed arrival (any input port).
    pub tc_arrived: u64,
    /// Packets dropped because the packet memory was full.
    pub tc_dropped_no_buffer: u64,
    /// Packets dropped because no connection-table entry matched.
    pub tc_dropped_no_conn: u64,
    /// Packets aborted because their connection was torn down while they
    /// were still in flight — the graceful-teardown ledger column, kept
    /// separate from `tc_dropped_no_conn` so mid-churn conservation
    /// distinguishes a misrouted packet from an accounted teardown abort.
    pub tc_aborted_teardown: u64,
    /// Malformed injections rejected (wrong payload size).
    pub tc_malformed: u64,
    /// Time-constrained packets transmitted, per output port.
    pub tc_transmitted: [u64; PORT_COUNT],
    /// Of those, transmissions that went out early (within the horizon).
    pub tc_early_transmitted: [u64; PORT_COUNT],
    /// Packets that cut through to their output link without buffering
    /// (only with the §7 virtual cut-through extension enabled).
    pub tc_cut_through: u64,
    /// Packets stored in the shared packet memory *and* registered with the
    /// link scheduler (the store-and-forward path).
    pub tc_buffered: u64,
    /// Buffered packets whose memory slot was freed after their last
    /// scheduled transmission started.
    pub tc_retired: u64,
    /// Time-constrained packets delivered through the reception port.
    pub tc_delivered: u64,
    /// Time-constrained bytes transmitted, per output port.
    pub tc_bytes: [u64; PORT_COUNT],
    /// Time-constrained bytes transmitted per (output port, wire connection
    /// id) — the series Figure 7 plots.
    pub tc_bytes_by_conn: HashMap<(usize, ConnectionId), u64>,
    /// Best-effort bytes transmitted, per output port.
    pub be_bytes: [u64; PORT_COUNT],
    /// Best-effort packets fully delivered through the reception port.
    pub be_delivered: u64,
    /// Malformed best-effort packets dropped at reassembly.
    pub be_malformed: u64,
    /// Idle cycles per output port (nothing eligible to send).
    pub idle_cycles: [u64; PORT_COUNT],
    /// Transmissions whose sorting key was aliased by clock rollover (late
    /// packets; zero for admitted traffic).
    pub aliased_keys: u64,
    /// Time-constrained packets abandoned mid-arrival because an upstream
    /// fault destroyed their remaining symbols (a new start arrived, or
    /// the node's own crash-restore aborted the reassembly).
    pub tc_truncated: u64,
    /// Orphan time-constrained continuation symbols shed (their packet's
    /// head was destroyed upstream). Counted in symbols, not packets.
    pub tc_orphan_symbols: u64,
    /// Best-effort bytes shed at an input port (torn framing from an
    /// upstream fault, or forged credits overflowing the flit buffer).
    /// Every shed byte's upstream flow-control credit is refunded.
    pub be_dropped_faulty: u64,
    /// Best-effort packets whose tail was destroyed upstream; their
    /// surviving prefix forwards and fails the sink's length check
    /// (`be_malformed` there).
    pub be_truncated: u64,
}

impl RouterStats {
    /// Total time-constrained packets dropped for any reason.
    #[must_use]
    pub fn tc_dropped(&self) -> u64 {
        self.tc_dropped_no_buffer
            + self.tc_dropped_no_conn
            + self.tc_malformed
            + self.tc_aborted_teardown
    }

    /// Checks the time-constrained packet-conservation invariants against
    /// the current packet-memory occupancy:
    ///
    /// 1. every arrival is accounted for exactly once —
    ///    `arrived = dropped(no-conn) + aborted(teardown) +
    ///    dropped(no-buffer) + cut-through + buffered`;
    /// 2. every buffered packet is either retired or still in memory —
    ///    `buffered = retired + occupied`.
    ///
    /// Sample between cycles (the counters are transiently inconsistent only
    /// inside a tick).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_conservation(&self, memory_occupied: usize) -> Result<(), String> {
        let accounted = self.tc_dropped_no_conn
            + self.tc_aborted_teardown
            + self.tc_dropped_no_buffer
            + self.tc_cut_through
            + self.tc_buffered;
        if self.tc_arrived != accounted {
            return Err(format!(
                "arrival conservation violated: arrived {} != no-conn {} + torn-down {} \
                 + no-buffer {} + cut-through {} + buffered {}",
                self.tc_arrived,
                self.tc_dropped_no_conn,
                self.tc_aborted_teardown,
                self.tc_dropped_no_buffer,
                self.tc_cut_through,
                self.tc_buffered
            ));
        }
        let resident = self.tc_retired + memory_occupied as u64;
        if self.tc_buffered != resident {
            return Err(format!(
                "buffer conservation violated: buffered {} != retired {} + occupied {}",
                self.tc_buffered, self.tc_retired, memory_occupied
            ));
        }
        Ok(())
    }

    /// Cumulative time-constrained bytes a wire connection id received on an
    /// output port.
    #[must_use]
    pub fn tc_conn_bytes(&self, port_index: usize, conn: ConnectionId) -> u64 {
        self.tc_bytes_by_conn.get(&(port_index, conn)).copied().unwrap_or(0)
    }

    /// Emits every scalar counter under the `router.` namespace, port
    /// arrays summed — the [`rtr_types::chip::Chip::counters`] contribution
    /// of a router carrying these stats. Every value here is drive-mode
    /// independent, so stepped and leaping runs emit identical totals.
    pub fn emit_counters(&self, emit: &mut dyn FnMut(&'static str, u64)) {
        emit("router.tc_injected", self.tc_injected);
        emit("router.tc_arrived", self.tc_arrived);
        emit("router.tc_dropped_no_buffer", self.tc_dropped_no_buffer);
        emit("router.tc_dropped_no_conn", self.tc_dropped_no_conn);
        emit("router.tc_aborted_teardown", self.tc_aborted_teardown);
        emit("router.tc_malformed", self.tc_malformed);
        emit("router.tc_transmitted", self.tc_transmitted.iter().sum());
        emit("router.tc_early_transmitted", self.tc_early_transmitted.iter().sum());
        emit("router.tc_cut_through", self.tc_cut_through);
        emit("router.tc_buffered", self.tc_buffered);
        emit("router.tc_retired", self.tc_retired);
        emit("router.tc_delivered", self.tc_delivered);
        emit("router.tc_bytes", self.tc_bytes.iter().sum());
        emit("router.be_bytes", self.be_bytes.iter().sum());
        emit("router.be_delivered", self.be_delivered);
        emit("router.be_malformed", self.be_malformed);
        emit("router.idle_cycles", self.idle_cycles.iter().sum());
        emit("router.aliased_keys", self.aliased_keys);
        emit("router.tc_truncated", self.tc_truncated);
        emit("router.tc_orphan_symbols", self.tc_orphan_symbols);
        emit("router.be_dropped_faulty", self.be_dropped_faulty);
        emit("router.be_truncated", self.be_truncated);
    }
}

impl std::fmt::Display for RouterStats {
    /// A one-paragraph human-readable summary (diagnostics/console use).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "tc: injected {}, arrived {}, delivered {}, dropped {} \
             (no-buffer {}, no-conn {}, malformed {}, torn-down {})",
            self.tc_injected,
            self.tc_arrived,
            self.tc_delivered,
            self.tc_dropped(),
            self.tc_dropped_no_buffer,
            self.tc_dropped_no_conn,
            self.tc_malformed,
            self.tc_aborted_teardown
        )?;
        writeln!(
            f,
            "tc per port (tx/early/bytes): {:?} / {:?} / {:?}; cut-through {}",
            self.tc_transmitted, self.tc_early_transmitted, self.tc_bytes, self.tc_cut_through
        )?;
        write!(
            f,
            "be: delivered {}, malformed {}, bytes per port {:?}; aliased keys {}",
            self.be_delivered, self.be_malformed, self.be_bytes, self.aliased_keys
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_summarises_the_counters() {
        let stats = RouterStats {
            tc_injected: 7,
            tc_delivered: 5,
            tc_cut_through: 2,
            ..RouterStats::default()
        };
        let s = stats.to_string();
        assert!(s.contains("injected 7"));
        assert!(s.contains("delivered 5"));
        assert!(s.contains("cut-through 2"));
        assert!(!s.is_empty(), "Debug/Display must never be empty");
    }

    #[test]
    fn drop_total_sums_causes() {
        let stats = RouterStats {
            tc_dropped_no_buffer: 2,
            tc_dropped_no_conn: 3,
            tc_malformed: 5,
            tc_aborted_teardown: 4,
            ..RouterStats::default()
        };
        assert_eq!(stats.tc_dropped(), 14);
    }

    #[test]
    fn teardown_aborts_balance_the_arrival_ledger() {
        // A packet aborted mid-churn lands in its own column; the arrival
        // invariant holds with the column included and flags it missing.
        let stats = RouterStats {
            tc_arrived: 6,
            tc_aborted_teardown: 2,
            tc_buffered: 4,
            tc_retired: 4,
            ..RouterStats::default()
        };
        stats.check_conservation(0).unwrap();
        let broken = RouterStats { tc_aborted_teardown: 0, ..stats };
        let e = broken.check_conservation(0).unwrap_err();
        assert!(e.contains("torn-down"), "{e}");
    }

    #[test]
    fn conservation_accepts_balanced_counters() {
        let stats = RouterStats {
            tc_arrived: 10,
            tc_dropped_no_conn: 1,
            tc_dropped_no_buffer: 2,
            tc_cut_through: 3,
            tc_buffered: 4,
            tc_retired: 3,
            ..RouterStats::default()
        };
        stats.check_conservation(1).unwrap();
    }

    #[test]
    fn conservation_flags_unaccounted_arrivals() {
        let stats =
            RouterStats { tc_arrived: 5, tc_buffered: 4, tc_retired: 4, ..RouterStats::default() };
        let e = stats.check_conservation(0).unwrap_err();
        assert!(e.contains("arrival conservation"), "{e}");
    }

    #[test]
    fn conservation_flags_leaked_memory_slots() {
        let stats =
            RouterStats { tc_arrived: 4, tc_buffered: 4, tc_retired: 2, ..RouterStats::default() };
        let e = stats.check_conservation(1).unwrap_err();
        assert!(e.contains("buffer conservation"), "{e}");
    }

    #[test]
    fn per_connection_bytes_default_to_zero() {
        let mut stats = RouterStats::default();
        assert_eq!(stats.tc_conn_bytes(1, ConnectionId(4)), 0);
        *stats.tc_bytes_by_conn.entry((1, ConnectionId(4))).or_insert(0) += 20;
        assert_eq!(stats.tc_conn_bytes(1, ConnectionId(4)), 20);
    }
}
