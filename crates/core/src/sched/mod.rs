//! Run-time link scheduling (paper §4.2, Figure 5).
//!
//! All five output ports share a single comparator tree that selects, among
//! up to 256 buffered time-constrained packets, the one with the smallest
//! sorting key for a given port. [`tree::ComparatorTree`] is the hardware
//! model; [`reference::ReferenceScheduler`] is an independent software
//! implementation of the paper's Table 1 three-queue discipline used to
//! cross-check it (they must always agree — see the property tests).

pub mod banded;
pub mod dispatch;
pub mod leaf;
pub mod oracle;
pub mod reference;
pub mod tree;

pub use banded::BandedScheduler;
pub use dispatch::{LinkScheduler, Scheduler};
pub use leaf::Leaf;
pub use oracle::OracleScheduler;
pub use reference::ReferenceScheduler;
pub use tree::{ComparatorTree, Selection};
