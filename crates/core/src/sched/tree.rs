//! The shared comparator tree (paper §4.2, Figure 5).
//!
//! Rather than keeping packets sorted, the router computes a normalised key
//! for every buffered packet and selects the minimum with a tree of unsigned
//! comparators. All five output ports share the single tree; a per-leaf bit
//! mask gates which leaves compete for which port. Ties resolve to the
//! leftmost (lowest-index) leaf, exactly as a hardware comparator that keeps
//! its left input on equality.
//!
//! The paper pipelines the tree in two stages so a selection completes every
//! 100 ns — one selection per port per 400 ns packet time with slack. The
//! simulator models that pipeline at the router level (a configurable
//! latency from "packets became eligible" to "first grant"); the tree itself
//! is combinational and versioned so unchanged state is never re-scanned.

use crate::memory::SlotAddr;
use crate::sched::leaf::Leaf;
use rtr_types::clock::{LogicalTime, SlotClock};
use rtr_types::ids::Port;
use rtr_types::key::{LatePolicy, SortKey};

/// The winning leaf of a selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// Index of the winning leaf.
    pub leaf: usize,
    /// Packet-memory address of the winner.
    pub addr: SlotAddr,
    /// The winning (minimum) key; its class drives the horizon check at the
    /// top of the tree.
    pub key: SortKey,
}

/// The comparator tree plus its leaf state.
///
/// # Example
///
/// ```
/// use rtr_core::memory::SlotAddr;
/// use rtr_core::sched::leaf::Leaf;
/// use rtr_core::sched::tree::ComparatorTree;
/// use rtr_types::clock::SlotClock;
/// use rtr_types::ids::{Direction, Port};
/// use rtr_types::key::LatePolicy;
///
/// let clock = SlotClock::new(8);
/// let mut tree = ComparatorTree::new(256, clock, LatePolicy::Saturate);
/// let port = Port::Dir(Direction::XPlus);
/// // Two on-time packets: deadline 22 beats deadline 30.
/// tree.insert(Leaf { l: clock.wrap(10), delay: 20, port_mask: port.mask(), addr: SlotAddr(0) }).unwrap();
/// let urgent = tree
///     .insert(Leaf { l: clock.wrap(12), delay: 10, port_mask: port.mask(), addr: SlotAddr(1) })
///     .unwrap();
/// let sel = tree.select(port, clock.wrap(15)).unwrap();
/// assert_eq!(sel.leaf, urgent);
/// assert_eq!(tree.commit(urgent, port), Some(SlotAddr(1)));
/// ```
#[derive(Debug)]
pub struct ComparatorTree {
    leaves: Vec<Option<Leaf>>,
    free: Vec<usize>,
    clock: SlotClock,
    late_policy: LatePolicy,
    version: u64,
    live: usize,
}

impl ComparatorTree {
    /// Creates a tree with `capacity` leaves (one per packet-memory slot).
    #[must_use]
    pub fn new(capacity: usize, clock: SlotClock, late_policy: LatePolicy) -> Self {
        ComparatorTree {
            leaves: (0..capacity).map(|_| None).collect(),
            free: (0..capacity).rev().collect(),
            clock,
            late_policy,
            version: 0,
            live: 0,
        }
    }

    /// Number of leaves holding packets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no packets are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Leaf capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.leaves.len()
    }

    /// Monotone counter bumped on every mutation; output ports use it to
    /// cache selections between changes.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The scheduler clock this tree normalises keys against.
    #[must_use]
    pub fn clock(&self) -> SlotClock {
        self.clock
    }

    /// Inserts a packet's scheduler state, returning its leaf index.
    ///
    /// # Errors
    ///
    /// Gives the leaf back if every leaf is occupied. In the router this
    /// cannot happen: leaves and memory slots are allocated 1:1 and the
    /// memory is checked first.
    pub fn insert(&mut self, leaf: Leaf) -> Result<usize, Leaf> {
        debug_assert!(leaf.port_mask != 0, "inserting a leaf with an empty mask");
        let Some(idx) = self.free.pop() else {
            return Err(leaf);
        };
        debug_assert!(self.leaves[idx].is_none());
        self.leaves[idx] = Some(leaf);
        self.live += 1;
        self.version += 1;
        Ok(idx)
    }

    /// Reads a leaf (test/diagnostic use).
    #[must_use]
    pub fn leaf(&self, idx: usize) -> Option<&Leaf> {
        self.leaves.get(idx).and_then(Option::as_ref)
    }

    /// Selects the minimum-key packet eligible for `port` at scheduler time
    /// `t`, or `None` if no leaf has the port's bit set.
    ///
    /// Both on-time and early packets compete (the early/on-time distinction
    /// is encoded in the key); the caller applies the horizon and
    /// best-effort checks of §3.2 before transmitting an early winner.
    #[must_use]
    pub fn select(&self, port: Port, t: LogicalTime) -> Option<Selection> {
        let mut best: Option<Selection> = None;
        for (idx, slot) in self.leaves.iter().enumerate() {
            let Some(leaf) = slot else { continue };
            if !leaf.eligible_for(port) {
                continue;
            }
            let key = SortKey::compute(&self.clock, leaf.l, leaf.delay, t, self.late_policy);
            let better = match &best {
                None => true,
                Some(b) => key < b.key, // strict: ties keep the leftmost leaf
            };
            if better {
                best = Some(Selection { leaf: idx, addr: leaf.addr, key });
            }
        }
        best
    }

    /// Records that `port` transmitted leaf `idx`: clears the port's bit and,
    /// if the mask is now empty, frees the leaf and returns the memory
    /// address that must be returned to the idle pool.
    ///
    /// # Panics
    ///
    /// Panics if the leaf is empty or the port's bit was not set — either
    /// indicates a scheduler/port desynchronisation bug.
    pub fn commit(&mut self, idx: usize, port: Port) -> Option<SlotAddr> {
        let leaf = self.leaves[idx].as_mut().expect("committing an empty leaf");
        assert!(leaf.eligible_for(port), "committing a port whose bit is clear");
        self.version += 1;
        if leaf.clear_port(port) {
            let addr = leaf.addr;
            self.leaves[idx] = None;
            self.free.push(idx);
            self.live -= 1;
            Some(addr)
        } else {
            None
        }
    }

    /// Iterates the live leaves (index, leaf).
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Leaf)> {
        self.leaves.iter().enumerate().filter_map(|(i, l)| l.as_ref().map(|l| (i, l)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_types::ids::Direction;

    fn clock() -> SlotClock {
        SlotClock::new(8)
    }

    fn tree(cap: usize) -> ComparatorTree {
        ComparatorTree::new(cap, clock(), LatePolicy::Saturate)
    }

    fn leaf(l: u64, d: u32, mask: u8, addr: u16) -> Leaf {
        Leaf { l: clock().wrap(l), delay: d, port_mask: mask, addr: SlotAddr(addr) }
    }

    const XP: Port = Port::Dir(Direction::XPlus);
    const YP: Port = Port::Dir(Direction::YPlus);

    #[test]
    fn selects_earliest_deadline_among_on_time() {
        let mut t = tree(8);
        t.insert(leaf(10, 20, XP.mask(), 0)).unwrap(); // deadline 30
        t.insert(leaf(12, 10, XP.mask(), 1)).unwrap(); // deadline 22
        t.insert(leaf(5, 40, XP.mask(), 2)).unwrap(); // deadline 45
        let sel = t.select(XP, clock().wrap(15)).unwrap();
        assert_eq!(sel.addr, SlotAddr(1));
        assert!(sel.key.is_on_time());
    }

    #[test]
    fn on_time_beats_early_even_with_tight_arrival() {
        let mut t = tree(8);
        t.insert(leaf(16, 100, XP.mask(), 0)).unwrap(); // early at t=15 by 1
        t.insert(leaf(0, 120, XP.mask(), 1)).unwrap(); // on-time, laxity 105
        let sel = t.select(XP, clock().wrap(15)).unwrap();
        assert_eq!(sel.addr, SlotAddr(1));
    }

    #[test]
    fn early_packets_order_by_arrival_time() {
        let mut t = tree(8);
        t.insert(leaf(30, 5, XP.mask(), 0)).unwrap();
        t.insert(leaf(25, 5, XP.mask(), 1)).unwrap();
        let sel = t.select(XP, clock().wrap(20)).unwrap();
        assert_eq!(sel.addr, SlotAddr(1));
        assert!(sel.key.is_early());
        assert_eq!(sel.key.time_field(), 5);
    }

    #[test]
    fn port_masks_gate_eligibility() {
        let mut t = tree(8);
        t.insert(leaf(0, 5, XP.mask(), 0)).unwrap();
        assert!(t.select(YP, clock().wrap(1)).is_none());
        assert!(t.select(XP, clock().wrap(1)).is_some());
    }

    #[test]
    fn ties_resolve_to_lowest_leaf_index() {
        let mut t = tree(8);
        t.insert(leaf(10, 10, XP.mask(), 7)).unwrap(); // leaf 0
        t.insert(leaf(10, 10, XP.mask(), 3)).unwrap(); // leaf 1, identical key
        let sel = t.select(XP, clock().wrap(12)).unwrap();
        assert_eq!(sel.leaf, 0);
        assert_eq!(sel.addr, SlotAddr(7));
    }

    #[test]
    fn multicast_commit_frees_only_after_last_port() {
        let mut t = tree(8);
        let idx = t.insert(leaf(0, 5, XP.mask() | YP.mask(), 4)).unwrap();
        assert_eq!(t.commit(idx, XP), None);
        assert_eq!(t.len(), 1);
        assert!(t.select(XP, clock().wrap(1)).is_none(), "served port no longer eligible");
        assert!(t.select(YP, clock().wrap(1)).is_some());
        assert_eq!(t.commit(idx, YP), Some(SlotAddr(4)));
        assert!(t.is_empty());
    }

    #[test]
    fn capacity_exhaustion_returns_leaf() {
        let mut t = tree(1);
        t.insert(leaf(0, 1, 1, 0)).unwrap();
        let rejected = t.insert(leaf(1, 1, 1, 1)).unwrap_err();
        assert_eq!(rejected.addr, SlotAddr(1));
    }

    #[test]
    fn version_bumps_on_mutation_only() {
        let mut t = tree(4);
        let v0 = t.version();
        let idx = t.insert(leaf(0, 1, XP.mask(), 0)).unwrap();
        assert!(t.version() > v0);
        let v1 = t.version();
        let _ = t.select(XP, clock().wrap(0));
        assert_eq!(t.version(), v1, "selection must not mutate");
        t.commit(idx, XP);
        assert!(t.version() > v1);
    }

    #[test]
    fn freed_leaves_are_reused() {
        let mut t = tree(2);
        let a = t.insert(leaf(0, 1, XP.mask(), 0)).unwrap();
        t.commit(a, XP);
        let b = t.insert(leaf(1, 1, XP.mask(), 1)).unwrap();
        assert_eq!(a, b, "freed leaf index is recycled");
    }

    #[test]
    #[should_panic(expected = "empty leaf")]
    fn committing_empty_leaf_panics() {
        let mut t = tree(2);
        t.commit(0, XP);
    }

    #[test]
    fn wrap_policy_reproduces_raw_hardware_aliasing() {
        // Under LatePolicy::Wrap a late packet's key aliases to a large
        // value and loses to an on-time packet — the §4.3 hazard the
        // admission constraints exist to rule out.
        let mut t = ComparatorTree::new(4, clock(), LatePolicy::Wrap);
        t.insert(leaf(10, 20, XP.mask(), 0)).unwrap(); // deadline 30 — long past at t = 100
        t.insert(leaf(95, 30, XP.mask(), 1)).unwrap(); // deadline 125, laxity 25
        let sel = t.select(XP, clock().wrap(100)).unwrap();
        assert_eq!(sel.addr, SlotAddr(1), "the aliased late packet is starved");
        assert!(sel.key.is_on_time());
        // With Saturate, the late packet wins instead.
        let mut t = ComparatorTree::new(4, clock(), LatePolicy::Saturate);
        t.insert(leaf(10, 20, XP.mask(), 0)).unwrap();
        t.insert(leaf(95, 30, XP.mask(), 1)).unwrap();
        let sel = t.select(XP, clock().wrap(100)).unwrap();
        assert_eq!(sel.addr, SlotAddr(0));
        assert!(sel.key.is_aliased());
    }

    #[test]
    fn selection_across_clock_rollover() {
        let mut t = tree(4);
        // At t = 254: one packet with deadline 2 (wrapped; 258 absolute),
        // one with deadline 250 (late-free regime not triggered: l=246,d=4 →
        // deadline 250 has passed; use d=8 → deadline 254, laxity 0).
        t.insert(leaf(250, 8, XP.mask(), 0)).unwrap(); // deadline 258 → wrapped 2, laxity 4
        t.insert(leaf(246, 8, XP.mask(), 1)).unwrap(); // deadline 254, laxity 0
        let sel = t.select(XP, clock().wrap(254)).unwrap();
        assert_eq!(sel.addr, SlotAddr(1));
        assert_eq!(sel.key.time_field(), 0);
    }
}
