//! The shared comparator tree (paper §4.2, Figure 5).
//!
//! Rather than keeping packets sorted, the router computes a normalised key
//! for every buffered packet and selects the minimum with a tree of unsigned
//! comparators. All five output ports share the single tree; a per-leaf bit
//! mask gates which leaves compete for which port. Ties resolve to the
//! leftmost (lowest-index) leaf, exactly as a hardware comparator that keeps
//! its left input on equality.
//!
//! The paper pipelines the tree in two stages so a selection completes every
//! 100 ns — one selection per port per 400 ns packet time with slack. The
//! simulator models that pipeline at the router level (a configurable
//! latency from "packets became eligible" to "first grant"); the tree itself
//! is combinational and versioned so unchanged state is never re-scanned.
//!
//! # Incremental tournament
//!
//! Like the hardware, selection is a materialised tournament: a complete
//! binary tree of per-port minima over the leaf keys. Keys are normalised to
//! the current slot time `t`, so the whole tree is recomputed once when `t`
//! advances (exactly what the combinational hardware does every slot) and
//! then maintained *incrementally*: `insert`/`commit` recompute one
//! root-to-leaf path in O(log n), and each per-port selection is an O(1)
//! read of the root. The per-slot state lives behind a [`RefCell`] so
//! `select(&self, …)` stays immutable-by-contract (the `version` counter
//! never moves on selection), matching the caching protocol of
//! `ports/output.rs`.

use std::cell::RefCell;

use crate::memory::SlotAddr;
use crate::sched::leaf::Leaf;
use rtr_types::clock::{LogicalTime, SlotClock};
use rtr_types::ids::{ports_in_mask, Port, PORT_COUNT};
use rtr_types::key::{LatePolicy, SortKey};

/// Packed tournament entry: key value in the high half, leaf index in the
/// low half, so an unsigned `min` orders by key first and breaks ties toward
/// the lowest leaf index — the hardware comparator that keeps its left input
/// on equality.
const NONE_ENTRY: u64 = u64::MAX;

fn pack(key: SortKey, leaf: usize) -> u64 {
    (u64::from(key.value()) << 32) | leaf as u64
}

fn unpack_leaf(entry: u64) -> usize {
    (entry & 0xffff_ffff) as usize
}

/// Per-slot tournament state: keys normalised to `t` plus the per-port
/// minima of every tournament node.
#[derive(Debug)]
struct MinCache {
    /// The slot time (raw wrapped value) the cached keys are normalised to;
    /// `None` while cold (rebuilt lazily by the next selection).
    t: Option<u32>,
    /// Key per occupied leaf, valid only while the cache is warm.
    keys: Vec<SortKey>,
    /// Tournament nodes: node `i` has children `2i`/`2i+1`, leaf `j` lives
    /// at `width + j`, the root is node 1. Only `2 * width` entries are in
    /// play at a time; the vector is sized for the full capacity.
    nodes: Vec<[u64; PORT_COUNT]>,
    /// Tournament width of the last rebuild: the occupied-leaf high-water
    /// mark rounded up to a power of two, so rebuild cost tracks occupancy
    /// rather than capacity (the free list reuses low indices first).
    width: usize,
    /// Total `SortKey::compute` invocations (perf accounting: selections at
    /// an unchanged slot must not add any).
    key_computes: u64,
}

/// The winning leaf of a selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// Index of the winning leaf.
    pub leaf: usize,
    /// Packet-memory address of the winner.
    pub addr: SlotAddr,
    /// The winning (minimum) key; its class drives the horizon check at the
    /// top of the tree.
    pub key: SortKey,
}

/// The comparator tree plus its leaf state.
///
/// # Example
///
/// ```
/// use rtr_core::memory::SlotAddr;
/// use rtr_core::sched::leaf::Leaf;
/// use rtr_core::sched::tree::ComparatorTree;
/// use rtr_types::clock::SlotClock;
/// use rtr_types::ids::{Direction, Port};
/// use rtr_types::key::LatePolicy;
///
/// let clock = SlotClock::new(8);
/// let mut tree = ComparatorTree::new(256, clock, LatePolicy::Saturate);
/// let port = Port::Dir(Direction::XPlus);
/// // Two on-time packets: deadline 22 beats deadline 30.
/// tree.insert(Leaf { l: clock.wrap(10), delay: 20, port_mask: port.mask(), addr: SlotAddr(0) }).unwrap();
/// let urgent = tree
///     .insert(Leaf { l: clock.wrap(12), delay: 10, port_mask: port.mask(), addr: SlotAddr(1) })
///     .unwrap();
/// let sel = tree.select(port, clock.wrap(15)).unwrap();
/// assert_eq!(sel.leaf, urgent);
/// assert_eq!(tree.commit(urgent, port), Some(SlotAddr(1)));
/// ```
#[derive(Debug)]
pub struct ComparatorTree {
    /// Leaf capacity (one per packet-memory slot). `leaves`/`free` hold
    /// this many entries once materialised, and none before the first
    /// insert — an idle router's tree allocates nothing.
    capacity: usize,
    leaves: Vec<Option<Leaf>>,
    free: Vec<usize>,
    clock: SlotClock,
    late_policy: LatePolicy,
    version: u64,
    live: usize,
    /// One past the highest occupied leaf index; bounds every rebuild.
    high: usize,
    cache: RefCell<MinCache>,
}

impl ComparatorTree {
    /// Creates a tree with `capacity` leaves (one per packet-memory slot).
    #[must_use]
    pub fn new(capacity: usize, clock: SlotClock, late_policy: LatePolicy) -> Self {
        // Both the leaf storage and the cache's key/node vectors are
        // materialised lazily on first use: a mega-mesh is mostly idle
        // routers whose trees never hold a packet, and the node vector
        // (sized for the full tournament width) is the tree's dominant
        // allocation.
        ComparatorTree {
            capacity,
            leaves: Vec::new(),
            free: Vec::new(),
            clock,
            late_policy,
            version: 0,
            live: 0,
            high: 0,
            cache: RefCell::new(MinCache {
                t: None,
                keys: Vec::new(),
                nodes: Vec::new(),
                width: 1,
                key_computes: 0,
            }),
        }
    }

    /// Number of leaves holding packets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no packets are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Leaf capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Heap bytes currently allocated behind the tree (leaf storage, free
    /// list, and tournament cache) — zero until the first insert.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        let cache = self.cache.borrow();
        self.leaves.capacity() * std::mem::size_of::<Option<Leaf>>()
            + self.free.capacity() * std::mem::size_of::<usize>()
            + cache.keys.capacity() * std::mem::size_of::<SortKey>()
            + cache.nodes.capacity() * std::mem::size_of::<[u64; PORT_COUNT]>()
    }

    /// Monotone counter bumped on every mutation; output ports use it to
    /// cache selections between changes.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The scheduler clock this tree normalises keys against.
    #[must_use]
    pub fn clock(&self) -> SlotClock {
        self.clock
    }

    /// Inserts a packet's scheduler state, returning its leaf index.
    ///
    /// # Errors
    ///
    /// Gives the leaf back if every leaf is occupied. In the router this
    /// cannot happen: leaves and memory slots are allocated 1:1 and the
    /// memory is checked first.
    pub fn insert(&mut self, leaf: Leaf) -> Result<usize, Leaf> {
        debug_assert!(leaf.port_mask != 0, "inserting a leaf with an empty mask");
        if self.leaves.len() < self.capacity {
            // First insert: materialise the leaf storage. The free list is
            // built high-to-low so pops hand out index 0 first, exactly as
            // the eager construction did — leaf numbering (and therefore
            // every tie-break and every drive mode) is byte-identical.
            self.leaves = (0..self.capacity).map(|_| None).collect();
            self.free = (0..self.capacity).rev().collect();
        }
        let Some(idx) = self.free.pop() else {
            return Err(leaf);
        };
        debug_assert!(self.leaves[idx].is_none());
        self.leaves[idx] = Some(leaf);
        self.live += 1;
        self.version += 1;
        self.high = self.high.max(idx + 1);
        let cache = self.cache.get_mut();
        if let Some(raw) = cache.t {
            if idx >= cache.width {
                // The leaf falls outside the current tournament; let the
                // next selection rebuild at the wider size.
                cache.t = None;
            } else {
                let t = self.clock.wrap(u64::from(raw));
                let key = SortKey::compute(&self.clock, leaf.l, leaf.delay, t, self.late_policy);
                cache.key_computes += 1;
                cache.keys[idx] = key;
                let packed = pack(key, idx);
                let node = &mut cache.nodes[cache.width + idx];
                for port in ports_in_mask(leaf.port_mask) {
                    node[port.index()] = packed;
                }
                Self::refresh_path(cache, cache.width + idx);
            }
        }
        Ok(idx)
    }

    /// Recomputes the per-port minima on the path from leaf node
    /// `leaf_node` to the root.
    fn refresh_path(cache: &mut MinCache, leaf_node: usize) {
        let mut i = leaf_node >> 1;
        while i >= 1 {
            let left = cache.nodes[2 * i];
            let right = cache.nodes[2 * i + 1];
            let mut merged = [NONE_ENTRY; PORT_COUNT];
            for (m, (l, r)) in merged.iter_mut().zip(left.iter().zip(right.iter())) {
                *m = (*l).min(*r);
            }
            cache.nodes[i] = merged;
            i >>= 1;
        }
    }

    /// Rebuilds the whole tournament for slot time `t` — the once-per-slot
    /// equivalent of the hardware recomputing every key combinationally.
    fn rebuild(&self, cache: &mut MinCache, t: LogicalTime) {
        if cache.nodes.is_empty() {
            // First rebuild: materialise the cache storage. Sized once for
            // the maximum tournament width (capacity rounded up to a power
            // of two); rebuilds use a prefix. Every warm-cache incremental
            // path (`insert`/`commit`) is gated on `cache.t.is_some()`,
            // which implies this ran.
            let cap_pow2 = self.capacity.next_power_of_two().max(1);
            cache.keys = vec![SortKey::ineligible(&self.clock); self.capacity];
            cache.nodes = vec![[NONE_ENTRY; PORT_COUNT]; 2 * cap_pow2];
        }
        cache.t = Some(t.raw());
        // Size the tournament to the occupied prefix, not the capacity:
        // the free list hands out low indices first, so a quarter-full
        // 256-leaf tree rebuilds a 64-wide tournament.
        let base = self.high.next_power_of_two().max(1);
        cache.width = base;
        for node in &mut cache.nodes[base..2 * base] {
            *node = [NONE_ENTRY; PORT_COUNT];
        }
        for (idx, slot) in self.leaves[..self.high].iter().enumerate() {
            let Some(leaf) = slot else { continue };
            let key = SortKey::compute(&self.clock, leaf.l, leaf.delay, t, self.late_policy);
            cache.key_computes += 1;
            cache.keys[idx] = key;
            let packed = pack(key, idx);
            let node = &mut cache.nodes[base + idx];
            for port in ports_in_mask(leaf.port_mask) {
                node[port.index()] = packed;
            }
        }
        for i in (1..base).rev() {
            let left = cache.nodes[2 * i];
            let right = cache.nodes[2 * i + 1];
            let mut merged = [NONE_ENTRY; PORT_COUNT];
            for (m, (l, r)) in merged.iter_mut().zip(left.iter().zip(right.iter())) {
                *m = (*l).min(*r);
            }
            cache.nodes[i] = merged;
        }
    }

    /// Total `SortKey` computations performed so far — the tournament's cost
    /// model. Selections at an unchanged slot time perform none.
    #[must_use]
    pub fn key_computations(&self) -> u64 {
        self.cache.borrow().key_computes
    }

    /// Reads a leaf (test/diagnostic use).
    #[must_use]
    pub fn leaf(&self, idx: usize) -> Option<&Leaf> {
        self.leaves.get(idx).and_then(Option::as_ref)
    }

    /// Selects the minimum-key packet eligible for `port` at scheduler time
    /// `t`, or `None` if no leaf has the port's bit set.
    ///
    /// Both on-time and early packets compete (the early/on-time distinction
    /// is encoded in the key); the caller applies the horizon and
    /// best-effort checks of §3.2 before transmitting an early winner.
    #[must_use]
    pub fn select(&self, port: Port, t: LogicalTime) -> Option<Selection> {
        if self.live == 0 {
            // Nothing buffered: answer without touching (or materialising)
            // the cache, so idle routers never allocate tournament storage.
            return None;
        }
        let mut cache = self.cache.borrow_mut();
        if cache.t != Some(t.raw()) {
            self.rebuild(&mut cache, t);
        }
        let entry = cache.nodes[1][port.index()];
        if entry == NONE_ENTRY {
            return None;
        }
        let idx = unpack_leaf(entry);
        let leaf = self.leaves[idx].as_ref().expect("tournament winner must be live");
        Some(Selection { leaf: idx, addr: leaf.addr, key: cache.keys[idx] })
    }

    /// The original exhaustive scan over every leaf — O(n) per call. Kept as
    /// the in-crate oracle for the tournament (property tests drive both and
    /// assert equality on every selection).
    #[must_use]
    pub fn select_linear(&self, port: Port, t: LogicalTime) -> Option<Selection> {
        let mut best: Option<Selection> = None;
        for (idx, slot) in self.leaves.iter().enumerate() {
            let Some(leaf) = slot else { continue };
            if !leaf.eligible_for(port) {
                continue;
            }
            let key = SortKey::compute(&self.clock, leaf.l, leaf.delay, t, self.late_policy);
            let better = match &best {
                None => true,
                Some(b) => key < b.key, // strict: ties keep the leftmost leaf
            };
            if better {
                best = Some(Selection { leaf: idx, addr: leaf.addr, key });
            }
        }
        best
    }

    /// Records that `port` transmitted leaf `idx`: clears the port's bit and,
    /// if the mask is now empty, frees the leaf and returns the memory
    /// address that must be returned to the idle pool.
    ///
    /// # Panics
    ///
    /// Panics if the leaf is empty or the port's bit was not set — either
    /// indicates a scheduler/port desynchronisation bug.
    pub fn commit(&mut self, idx: usize, port: Port) -> Option<SlotAddr> {
        let leaf =
            self.leaves.get_mut(idx).and_then(Option::as_mut).expect("committing an empty leaf");
        assert!(leaf.eligible_for(port), "committing a port whose bit is clear");
        self.version += 1;
        let freed = leaf.clear_port(port);
        let addr = leaf.addr;
        if freed {
            self.leaves[idx] = None;
            self.free.push(idx);
            self.live -= 1;
            while self.high > 0 && self.leaves[self.high - 1].is_none() {
                self.high -= 1;
            }
        }
        let cache = self.cache.get_mut();
        if cache.t.is_some() {
            // A warm cache always covers every live leaf (inserting past
            // the width invalidates it), so `idx` is inside the tournament.
            debug_assert!(idx < cache.width);
            let node = &mut cache.nodes[cache.width + idx];
            if freed {
                *node = [NONE_ENTRY; PORT_COUNT];
            } else {
                node[port.index()] = NONE_ENTRY;
            }
            Self::refresh_path(cache, cache.width + idx);
        }
        if freed {
            Some(addr)
        } else {
            None
        }
    }

    /// Iterates the live leaves (index, leaf).
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Leaf)> {
        self.leaves.iter().enumerate().filter_map(|(i, l)| l.as_ref().map(|l| (i, l)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_types::ids::Direction;

    fn clock() -> SlotClock {
        SlotClock::new(8)
    }

    fn tree(cap: usize) -> ComparatorTree {
        ComparatorTree::new(cap, clock(), LatePolicy::Saturate)
    }

    fn leaf(l: u64, d: u32, mask: u8, addr: u16) -> Leaf {
        Leaf { l: clock().wrap(l), delay: d, port_mask: mask, addr: SlotAddr(addr) }
    }

    const XP: Port = Port::Dir(Direction::XPlus);
    const YP: Port = Port::Dir(Direction::YPlus);

    #[test]
    fn selects_earliest_deadline_among_on_time() {
        let mut t = tree(8);
        t.insert(leaf(10, 20, XP.mask(), 0)).unwrap(); // deadline 30
        t.insert(leaf(12, 10, XP.mask(), 1)).unwrap(); // deadline 22
        t.insert(leaf(5, 40, XP.mask(), 2)).unwrap(); // deadline 45
        let sel = t.select(XP, clock().wrap(15)).unwrap();
        assert_eq!(sel.addr, SlotAddr(1));
        assert!(sel.key.is_on_time());
    }

    #[test]
    fn on_time_beats_early_even_with_tight_arrival() {
        let mut t = tree(8);
        t.insert(leaf(16, 100, XP.mask(), 0)).unwrap(); // early at t=15 by 1
        t.insert(leaf(0, 120, XP.mask(), 1)).unwrap(); // on-time, laxity 105
        let sel = t.select(XP, clock().wrap(15)).unwrap();
        assert_eq!(sel.addr, SlotAddr(1));
    }

    #[test]
    fn early_packets_order_by_arrival_time() {
        let mut t = tree(8);
        t.insert(leaf(30, 5, XP.mask(), 0)).unwrap();
        t.insert(leaf(25, 5, XP.mask(), 1)).unwrap();
        let sel = t.select(XP, clock().wrap(20)).unwrap();
        assert_eq!(sel.addr, SlotAddr(1));
        assert!(sel.key.is_early());
        assert_eq!(sel.key.time_field(), 5);
    }

    #[test]
    fn port_masks_gate_eligibility() {
        let mut t = tree(8);
        t.insert(leaf(0, 5, XP.mask(), 0)).unwrap();
        assert!(t.select(YP, clock().wrap(1)).is_none());
        assert!(t.select(XP, clock().wrap(1)).is_some());
    }

    #[test]
    fn ties_resolve_to_lowest_leaf_index() {
        let mut t = tree(8);
        t.insert(leaf(10, 10, XP.mask(), 7)).unwrap(); // leaf 0
        t.insert(leaf(10, 10, XP.mask(), 3)).unwrap(); // leaf 1, identical key
        let sel = t.select(XP, clock().wrap(12)).unwrap();
        assert_eq!(sel.leaf, 0);
        assert_eq!(sel.addr, SlotAddr(7));
    }

    #[test]
    fn multicast_commit_frees_only_after_last_port() {
        let mut t = tree(8);
        let idx = t.insert(leaf(0, 5, XP.mask() | YP.mask(), 4)).unwrap();
        assert_eq!(t.commit(idx, XP), None);
        assert_eq!(t.len(), 1);
        assert!(t.select(XP, clock().wrap(1)).is_none(), "served port no longer eligible");
        assert!(t.select(YP, clock().wrap(1)).is_some());
        assert_eq!(t.commit(idx, YP), Some(SlotAddr(4)));
        assert!(t.is_empty());
    }

    #[test]
    fn capacity_exhaustion_returns_leaf() {
        let mut t = tree(1);
        t.insert(leaf(0, 1, 1, 0)).unwrap();
        let rejected = t.insert(leaf(1, 1, 1, 1)).unwrap_err();
        assert_eq!(rejected.addr, SlotAddr(1));
    }

    #[test]
    fn version_bumps_on_mutation_only() {
        let mut t = tree(4);
        let v0 = t.version();
        let idx = t.insert(leaf(0, 1, XP.mask(), 0)).unwrap();
        assert!(t.version() > v0);
        let v1 = t.version();
        let _ = t.select(XP, clock().wrap(0));
        assert_eq!(t.version(), v1, "selection must not mutate");
        t.commit(idx, XP);
        assert!(t.version() > v1);
    }

    #[test]
    fn freed_leaves_are_reused() {
        let mut t = tree(2);
        let a = t.insert(leaf(0, 1, XP.mask(), 0)).unwrap();
        t.commit(a, XP);
        let b = t.insert(leaf(1, 1, XP.mask(), 1)).unwrap();
        assert_eq!(a, b, "freed leaf index is recycled");
    }

    #[test]
    #[should_panic(expected = "empty leaf")]
    fn committing_empty_leaf_panics() {
        let mut t = tree(2);
        t.commit(0, XP);
    }

    #[test]
    fn wrap_policy_reproduces_raw_hardware_aliasing() {
        // Under LatePolicy::Wrap a late packet's key aliases to a large
        // value and loses to an on-time packet — the §4.3 hazard the
        // admission constraints exist to rule out.
        let mut t = ComparatorTree::new(4, clock(), LatePolicy::Wrap);
        t.insert(leaf(10, 20, XP.mask(), 0)).unwrap(); // deadline 30 — long past at t = 100
        t.insert(leaf(95, 30, XP.mask(), 1)).unwrap(); // deadline 125, laxity 25
        let sel = t.select(XP, clock().wrap(100)).unwrap();
        assert_eq!(sel.addr, SlotAddr(1), "the aliased late packet is starved");
        assert!(sel.key.is_on_time());
        // With Saturate, the late packet wins instead.
        let mut t = ComparatorTree::new(4, clock(), LatePolicy::Saturate);
        t.insert(leaf(10, 20, XP.mask(), 0)).unwrap();
        t.insert(leaf(95, 30, XP.mask(), 1)).unwrap();
        let sel = t.select(XP, clock().wrap(100)).unwrap();
        assert_eq!(sel.addr, SlotAddr(0));
        assert!(sel.key.is_aliased());
    }

    #[test]
    fn selection_across_clock_rollover() {
        let mut t = tree(4);
        // At t = 254: one packet with deadline 2 (wrapped; 258 absolute),
        // one with deadline 250 (late-free regime not triggered: l=246,d=4 →
        // deadline 250 has passed; use d=8 → deadline 254, laxity 0).
        t.insert(leaf(250, 8, XP.mask(), 0)).unwrap(); // deadline 258 → wrapped 2, laxity 4
        t.insert(leaf(246, 8, XP.mask(), 1)).unwrap(); // deadline 254, laxity 0
        let sel = t.select(XP, clock().wrap(254)).unwrap();
        assert_eq!(sel.addr, SlotAddr(1));
        assert_eq!(sel.key.time_field(), 0);
    }

    #[test]
    fn select_cost_is_independent_of_occupancy() {
        // The incremental tournament pays its keys on insert and on the
        // first select of a slot time; a repeat select at the same time is
        // a pure root read — zero key computations at any occupancy.
        for occupancy in [16usize, 64, 128, 256] {
            let mut t = tree(256);
            let c = clock();
            for i in 0..occupancy {
                t.insert(Leaf {
                    l: c.wrap(60 + (i as u64 * 7) % 90),
                    delay: 4 + (i as u32 * 13) % 100,
                    port_mask: 1 << (i % 5),
                    addr: SlotAddr(i as u16),
                })
                .unwrap();
            }
            let now = c.wrap(100);
            let _ = t.select(XP, now); // warms the cache: O(n) keys, once
            let warm = t.key_computations();
            for port in Port::ALL {
                let _ = t.select(port, now);
            }
            assert_eq!(
                t.key_computations(),
                warm,
                "cached selects at occupancy {occupancy} must compute no keys"
            );
        }
    }

    mod random_ops {
        use super::*;
        use crate::sched::banded::BandedScheduler;
        use proptest::prelude::*;

        /// One randomly chosen scheduler operation, encoded as plain
        /// numbers: (kind, l-offset, delay, mask, (addr, port), advance).
        type RawOp = (u8, i64, u32, u8, (u16, usize), u64);

        proptest! {
            /// Drives a random interleaving of insert / commit / select /
            /// clock-advance through the incremental tournament, the
            /// exhaustive linear scan, and the banded scheduler. After
            /// every operation the tournament and the scan must agree on
            /// every port — same winner, same key, same slot address —
            /// including ties (leftmost leaf wins in both) and selections
            /// straddling the 8-bit clock wrap.
            #[test]
            fn tournament_matches_linear_scan_under_random_ops(
                start in 0u64..600,
                ops in proptest::collection::vec(
                    (0u8..4, -40i64..40, 0u32..100, 1u8..32, (0u16..32, 0usize..5), 1u64..30),
                    1..80,
                ),
            ) {
                let c = clock();
                let mut tree = ComparatorTree::new(32, c, LatePolicy::Saturate);
                let mut banded = BandedScheduler::new(32, c, LatePolicy::Saturate, 2);
                let mut t_abs = start;
                let ops: Vec<RawOp> = ops;
                for (kind, off, d, mask, (addr, port_i), adv) in ops {
                    let port = Port::ALL[port_i];
                    let t = c.wrap(t_abs);
                    match kind {
                        0 => {
                            let l_abs = (t_abs as i64 + off).max(0) as u64;
                            let leaf = Leaf {
                                l: c.wrap(l_abs),
                                delay: d.min(127),
                                port_mask: mask,
                                addr: SlotAddr(addr),
                            };
                            let _ = tree.insert(leaf);
                            let _ = banded.insert(leaf);
                        }
                        1 => {
                            // Commit the current winner, like the router.
                            if let Some(sel) = tree.select(port, t) {
                                tree.commit(sel.leaf, port);
                            }
                            if let Some(sel) = banded.select(port, t) {
                                banded.commit(sel.leaf, port);
                            }
                        }
                        2 => {
                            // Pure select; the postcondition below checks it.
                        }
                        3 => t_abs += adv,
                        _ => unreachable!(),
                    }
                    let t = c.wrap(t_abs);
                    for p in Port::ALL {
                        prop_assert_eq!(tree.select(p, t), tree.select_linear(p, t));
                    }
                }
            }
        }
    }
}
