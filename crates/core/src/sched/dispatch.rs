//! Scheduler dispatch: the router is built with the exact comparator tree
//! (the fabricated chip), the §7 banded approximation, or the Table 1
//! oracle, behind one interface.
//!
//! Every variant implements [`LinkScheduler`]; the [`Scheduler`] enum only
//! chooses which implementation backs the trait object, so the router — and
//! the ablation experiments — exercise all variants through a single code
//! path.

use crate::memory::SlotAddr;
use crate::sched::banded::BandedScheduler;
use crate::sched::leaf::Leaf;
use crate::sched::oracle::OracleScheduler;
use crate::sched::tree::{ComparatorTree, Selection};
use rtr_types::clock::{LogicalTime, SlotClock};
use rtr_types::config::SchedulerKind;
use rtr_types::ids::Port;
use rtr_types::key::LatePolicy;

/// The common contract of every link-scheduler implementation: the leaf
/// lifecycle (`insert` → `select`* → `commit`) plus the version counter the
/// output ports key their selection caches on.
pub trait LinkScheduler: std::fmt::Debug {
    /// Number of buffered packets.
    fn len(&self) -> usize;

    /// Whether no packets are buffered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Monotone counter bumped on every mutation (never by selection).
    fn version(&self) -> u64;

    /// Inserts a packet's scheduler state, returning its leaf index.
    ///
    /// # Errors
    ///
    /// Gives the leaf back if every slot is occupied.
    fn insert(&mut self, leaf: Leaf) -> Result<usize, Leaf>;

    /// Selects the winning packet for `port` at scheduler time `t`. Both
    /// on-time and early packets compete; the caller applies the horizon
    /// check before transmitting an early winner.
    fn select(&self, port: Port, t: LogicalTime) -> Option<Selection>;

    /// Records that `port` transmitted leaf `idx`; returns the freed memory
    /// address when the last port commits.
    fn commit(&mut self, idx: usize, port: Port) -> Option<SlotAddr>;

    /// The occupied leaves, as `(index, leaf)` pairs.
    fn live_leaves(&self) -> Box<dyn Iterator<Item = (usize, &Leaf)> + '_>;

    /// Buffered packets still awaiting transmission on `port` (a per-link
    /// queue-depth gauge).
    fn backlog_for(&self, port: Port) -> usize {
        let mask = port.mask();
        self.live_leaves().filter(|(_, leaf)| leaf.port_mask & mask != 0).count()
    }
}

impl LinkScheduler for ComparatorTree {
    fn len(&self) -> usize {
        ComparatorTree::len(self)
    }

    fn version(&self) -> u64 {
        ComparatorTree::version(self)
    }

    fn insert(&mut self, leaf: Leaf) -> Result<usize, Leaf> {
        ComparatorTree::insert(self, leaf)
    }

    fn select(&self, port: Port, t: LogicalTime) -> Option<Selection> {
        ComparatorTree::select(self, port, t)
    }

    fn commit(&mut self, idx: usize, port: Port) -> Option<SlotAddr> {
        ComparatorTree::commit(self, idx, port)
    }

    fn live_leaves(&self) -> Box<dyn Iterator<Item = (usize, &Leaf)> + '_> {
        Box::new(self.iter())
    }
}

impl LinkScheduler for BandedScheduler {
    fn len(&self) -> usize {
        BandedScheduler::len(self)
    }

    fn version(&self) -> u64 {
        BandedScheduler::version(self)
    }

    fn insert(&mut self, leaf: Leaf) -> Result<usize, Leaf> {
        BandedScheduler::insert(self, leaf)
    }

    fn select(&self, port: Port, t: LogicalTime) -> Option<Selection> {
        BandedScheduler::select(self, port, t)
    }

    fn commit(&mut self, idx: usize, port: Port) -> Option<SlotAddr> {
        BandedScheduler::commit(self, idx, port)
    }

    fn live_leaves(&self) -> Box<dyn Iterator<Item = (usize, &Leaf)> + '_> {
        Box::new(self.iter())
    }
}

impl LinkScheduler for OracleScheduler {
    fn len(&self) -> usize {
        OracleScheduler::len(self)
    }

    fn version(&self) -> u64 {
        OracleScheduler::version(self)
    }

    fn insert(&mut self, leaf: Leaf) -> Result<usize, Leaf> {
        OracleScheduler::insert(self, leaf)
    }

    fn select(&self, port: Port, t: LogicalTime) -> Option<Selection> {
        OracleScheduler::select(self, port, t)
    }

    fn commit(&mut self, idx: usize, port: Port) -> Option<SlotAddr> {
        OracleScheduler::commit(self, idx, port)
    }

    fn live_leaves(&self) -> Box<dyn Iterator<Item = (usize, &Leaf)> + '_> {
        Box::new(self.iter())
    }
}

/// The link scheduler variant instantiated by the router.
#[derive(Debug)]
pub enum Scheduler {
    /// The exact comparator tree (Figure 5).
    Tree(ComparatorTree),
    /// The §7 banded approximation.
    Banded(BandedScheduler),
    /// The Table 1 reference discipline, run as a live scheduler.
    Oracle(OracleScheduler),
}

impl Scheduler {
    /// Builds the scheduler selected by the configuration.
    #[must_use]
    pub fn new(
        kind: SchedulerKind,
        capacity: usize,
        clock: SlotClock,
        late_policy: LatePolicy,
    ) -> Self {
        match kind {
            SchedulerKind::ComparatorTree => {
                Scheduler::Tree(ComparatorTree::new(capacity, clock, late_policy))
            }
            SchedulerKind::Banded { band_shift } => {
                Scheduler::Banded(BandedScheduler::new(capacity, clock, late_policy, band_shift))
            }
            SchedulerKind::Oracle => {
                Scheduler::Oracle(OracleScheduler::new(capacity, clock, late_policy))
            }
        }
    }

    /// The active implementation as a trait object — the single code path
    /// every caller goes through.
    #[must_use]
    pub fn as_dyn(&self) -> &dyn LinkScheduler {
        match self {
            Scheduler::Tree(t) => t,
            Scheduler::Banded(b) => b,
            Scheduler::Oracle(o) => o,
        }
    }

    /// Mutable access to the active implementation.
    pub fn as_dyn_mut(&mut self) -> &mut dyn LinkScheduler {
        match self {
            Scheduler::Tree(t) => t,
            Scheduler::Banded(b) => b,
            Scheduler::Oracle(o) => o,
        }
    }

    /// Number of buffered packets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.as_dyn().len()
    }

    /// Whether no packets are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.as_dyn().is_empty()
    }

    /// Mutation counter (for selection caching).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.as_dyn().version()
    }

    /// Inserts a leaf.
    ///
    /// # Errors
    ///
    /// Gives the leaf back if every slot is occupied.
    pub fn insert(&mut self, leaf: Leaf) -> Result<usize, Leaf> {
        self.as_dyn_mut().insert(leaf)
    }

    /// Selects the winning packet for a port.
    #[must_use]
    pub fn select(&self, port: Port, t: LogicalTime) -> Option<Selection> {
        self.as_dyn().select(port, t)
    }

    /// Records a transmission; returns the freed memory address when the
    /// leaf empties.
    pub fn commit(&mut self, idx: usize, port: Port) -> Option<SlotAddr> {
        self.as_dyn_mut().commit(idx, port)
    }

    /// The occupied leaves, as `(index, leaf)` pairs.
    pub fn iter(&self) -> Box<dyn Iterator<Item = (usize, &Leaf)> + '_> {
        self.as_dyn().live_leaves()
    }

    /// Buffered packets still awaiting transmission on `port` (a per-link
    /// queue-depth gauge).
    #[must_use]
    pub fn backlog_for(&self, port: Port) -> usize {
        self.as_dyn().backlog_for(port)
    }

    /// Sorting-key computations performed so far — the comparator tree's
    /// work counter. Implementations without selection caching (banded,
    /// oracle) don't count key work and report zero.
    #[must_use]
    pub fn key_computations(&self) -> u64 {
        match self {
            Scheduler::Tree(t) => t.key_computations(),
            Scheduler::Banded(_) | Scheduler::Oracle(_) => 0,
        }
    }

    /// Heap bytes currently allocated behind the active implementation —
    /// zero until its first insert (leaf storage is lazy in every variant).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        match self {
            Scheduler::Tree(t) => t.heap_bytes(),
            Scheduler::Banded(b) => b.heap_bytes(),
            Scheduler::Oracle(o) => o.heap_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_types::ids::Direction;

    #[test]
    fn dispatch_constructs_the_requested_variant() {
        let clock = SlotClock::new(8);
        let tree = Scheduler::new(SchedulerKind::ComparatorTree, 8, clock, LatePolicy::Saturate);
        assert!(matches!(tree, Scheduler::Tree(_)));
        let banded =
            Scheduler::new(SchedulerKind::Banded { band_shift: 3 }, 8, clock, LatePolicy::Saturate);
        assert!(matches!(banded, Scheduler::Banded(_)));
        let oracle = Scheduler::new(SchedulerKind::Oracle, 8, clock, LatePolicy::Saturate);
        assert!(matches!(oracle, Scheduler::Oracle(_)));
    }

    #[test]
    fn all_variants_round_trip_a_leaf() {
        let clock = SlotClock::new(8);
        for kind in [
            SchedulerKind::ComparatorTree,
            SchedulerKind::Banded { band_shift: 2 },
            SchedulerKind::Oracle,
        ] {
            let mut s = Scheduler::new(kind, 4, clock, LatePolicy::Saturate);
            assert!(s.is_empty());
            let idx = s
                .insert(Leaf {
                    l: clock.wrap(0),
                    delay: 5,
                    port_mask: Port::Dir(Direction::XPlus).mask(),
                    addr: SlotAddr(2),
                })
                .unwrap();
            assert_eq!(s.len(), 1);
            let sel = s.select(Port::Dir(Direction::XPlus), clock.wrap(1)).unwrap();
            assert_eq!(sel.addr, SlotAddr(2));
            assert_eq!(s.backlog_for(Port::Dir(Direction::XPlus)), 1);
            assert_eq!(s.commit(idx, Port::Dir(Direction::XPlus)), Some(SlotAddr(2)));
            assert!(s.is_empty());
        }
    }
}
