//! Scheduler dispatch: the router is built with either the exact
//! comparator tree (the fabricated chip) or the §7 banded approximation,
//! behind one interface.

use crate::memory::SlotAddr;
use crate::sched::banded::BandedScheduler;
use crate::sched::leaf::Leaf;
use crate::sched::tree::{ComparatorTree, Selection};
use rtr_types::clock::{LogicalTime, SlotClock};
use rtr_types::config::SchedulerKind;
use rtr_types::ids::Port;
use rtr_types::key::LatePolicy;

/// The link scheduler variant instantiated by the router.
#[derive(Debug)]
pub enum Scheduler {
    /// The exact comparator tree (Figure 5).
    Tree(ComparatorTree),
    /// The §7 banded approximation.
    Banded(BandedScheduler),
}

impl Scheduler {
    /// Builds the scheduler selected by the configuration.
    #[must_use]
    pub fn new(
        kind: SchedulerKind,
        capacity: usize,
        clock: SlotClock,
        late_policy: LatePolicy,
    ) -> Self {
        match kind {
            SchedulerKind::ComparatorTree => {
                Scheduler::Tree(ComparatorTree::new(capacity, clock, late_policy))
            }
            SchedulerKind::Banded { band_shift } => {
                Scheduler::Banded(BandedScheduler::new(capacity, clock, late_policy, band_shift))
            }
        }
    }

    /// Number of buffered packets.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Scheduler::Tree(t) => t.len(),
            Scheduler::Banded(b) => b.len(),
        }
    }

    /// Whether no packets are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mutation counter (for selection caching).
    #[must_use]
    pub fn version(&self) -> u64 {
        match self {
            Scheduler::Tree(t) => t.version(),
            Scheduler::Banded(b) => b.version(),
        }
    }

    /// Inserts a leaf.
    ///
    /// # Errors
    ///
    /// Gives the leaf back if every slot is occupied.
    pub fn insert(&mut self, leaf: Leaf) -> Result<usize, Leaf> {
        match self {
            Scheduler::Tree(t) => t.insert(leaf),
            Scheduler::Banded(b) => b.insert(leaf),
        }
    }

    /// Selects the winning packet for a port.
    #[must_use]
    pub fn select(&self, port: Port, t: LogicalTime) -> Option<Selection> {
        match self {
            Scheduler::Tree(tr) => tr.select(port, t),
            Scheduler::Banded(b) => b.select(port, t),
        }
    }

    /// Records a transmission; returns the freed memory address when the
    /// leaf empties.
    pub fn commit(&mut self, idx: usize, port: Port) -> Option<SlotAddr> {
        match self {
            Scheduler::Tree(t) => t.commit(idx, port),
            Scheduler::Banded(b) => b.commit(idx, port),
        }
    }

    /// The occupied leaves, as `(index, leaf)` pairs.
    pub fn iter(&self) -> Box<dyn Iterator<Item = (usize, &Leaf)> + '_> {
        match self {
            Scheduler::Tree(t) => Box::new(t.iter()),
            Scheduler::Banded(b) => Box::new(b.iter()),
        }
    }

    /// Buffered packets still awaiting transmission on `port` (a per-link
    /// queue-depth gauge).
    #[must_use]
    pub fn backlog_for(&self, port: Port) -> usize {
        let mask = port.mask();
        self.iter().filter(|(_, leaf)| leaf.port_mask & mask != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_types::ids::Direction;

    #[test]
    fn dispatch_constructs_the_requested_variant() {
        let clock = SlotClock::new(8);
        let tree = Scheduler::new(SchedulerKind::ComparatorTree, 8, clock, LatePolicy::Saturate);
        assert!(matches!(tree, Scheduler::Tree(_)));
        let banded =
            Scheduler::new(SchedulerKind::Banded { band_shift: 3 }, 8, clock, LatePolicy::Saturate);
        assert!(matches!(banded, Scheduler::Banded(_)));
    }

    #[test]
    fn both_variants_round_trip_a_leaf() {
        let clock = SlotClock::new(8);
        for kind in [SchedulerKind::ComparatorTree, SchedulerKind::Banded { band_shift: 2 }] {
            let mut s = Scheduler::new(kind, 4, clock, LatePolicy::Saturate);
            assert!(s.is_empty());
            let idx = s
                .insert(Leaf {
                    l: clock.wrap(0),
                    delay: 5,
                    port_mask: Port::Dir(Direction::XPlus).mask(),
                    addr: SlotAddr(2),
                })
                .unwrap();
            assert_eq!(s.len(), 1);
            let sel = s.select(Port::Dir(Direction::XPlus), clock.wrap(1)).unwrap();
            assert_eq!(sel.addr, SlotAddr(2));
            assert_eq!(s.commit(idx, Port::Dir(Direction::XPlus)), Some(SlotAddr(2)));
            assert!(s.is_empty());
        }
    }
}
