//! An approximate, reduced-complexity link scheduler (paper §7).
//!
//! "We are also considering alternate link-scheduling algorithms that would
//! improve the router's scalability; these algorithms could include
//! approximate versions of real-time channels, as well as new schemes with
//! reduced implementation complexity."
//!
//! This scheduler quantises the normalised sorting key into a small number
//! of **priority bands** and serves FIFO within a band. Hardware-wise that
//! replaces the `n − 1`-comparator tree with `B` FIFO queues per class and
//! a `B`-way priority encoder — cost grows with `B`, not with the number
//! of buffered packets. The price is *bounded priority inversion*: two
//! packets whose laxities fall in the same band may be served in arrival
//! order, so admission must widen its overhead allowance `η` by the band
//! width (see the ablation in `rtr-bench`).

use crate::memory::SlotAddr;
use crate::sched::leaf::Leaf;
use crate::sched::tree::Selection;
use rtr_types::clock::{LogicalTime, SlotClock};
use rtr_types::ids::Port;
use rtr_types::key::{LatePolicy, SortKey};

/// The banded approximate scheduler. Interface-compatible with
/// [`crate::sched::tree::ComparatorTree`].
#[derive(Debug)]
pub struct BandedScheduler {
    /// Leaf capacity; `leaves`/`free` are materialised (to this length) on
    /// the first insert so idle routers allocate nothing.
    capacity: usize,
    leaves: Vec<Option<(Leaf, u64)>>,
    free: Vec<usize>,
    clock: SlotClock,
    late_policy: LatePolicy,
    /// Laxity quantum: keys are right-shifted by this many bits before
    /// comparison (band width = `2^shift` slots).
    band_shift: u32,
    next_seq: u64,
    version: u64,
    live: usize,
}

impl BandedScheduler {
    /// Creates a banded scheduler with `2^band_shift`-slot bands.
    ///
    /// `band_shift = 0` degenerates to exact EDF with FIFO tie-breaking.
    #[must_use]
    pub fn new(
        capacity: usize,
        clock: SlotClock,
        late_policy: LatePolicy,
        band_shift: u32,
    ) -> Self {
        BandedScheduler {
            capacity,
            leaves: Vec::new(),
            free: Vec::new(),
            clock,
            late_policy,
            band_shift,
            next_seq: 0,
            version: 0,
            live: 0,
        }
    }

    /// The band width in slots.
    #[must_use]
    pub fn band_slots(&self) -> u32 {
        1 << self.band_shift
    }

    /// Number of live leaves.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no packets are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Mutation counter (for the output ports' selection caches).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Inserts a packet's scheduler state.
    ///
    /// # Errors
    ///
    /// Gives the leaf back if every slot is occupied.
    pub fn insert(&mut self, leaf: Leaf) -> Result<usize, Leaf> {
        if self.leaves.len() < self.capacity {
            // High-to-low free list: pops hand out index 0 first, matching
            // the eager construction leaf for leaf.
            self.leaves = (0..self.capacity).map(|_| None).collect();
            self.free = (0..self.capacity).rev().collect();
        }
        let Some(idx) = self.free.pop() else {
            return Err(leaf);
        };
        self.leaves[idx] = Some((leaf, self.next_seq));
        self.next_seq += 1;
        self.live += 1;
        self.version += 1;
        Ok(idx)
    }

    /// Selects the packet with the smallest (banded key, arrival sequence)
    /// for `port` at time `t`. The returned [`Selection`] carries the
    /// winner's *exact* key so the caller's class/horizon checks behave
    /// identically to the tree's.
    #[must_use]
    pub fn select(&self, port: Port, t: LogicalTime) -> Option<Selection> {
        let mut best: Option<(u32, u64, Selection)> = None;
        for (idx, slot) in self.leaves.iter().enumerate() {
            let Some((leaf, seq)) = slot else { continue };
            if !leaf.eligible_for(port) {
                continue;
            }
            let key = SortKey::compute(&self.clock, leaf.l, leaf.delay, t, self.late_policy);
            // Quantise only the time field; the class bits stay exact so
            // on-time packets always beat early ones.
            let class = key.value() & !(self.clock.half_range() - 1);
            let banded = class | (key.time_field() >> self.band_shift);
            let better = match &best {
                None => true,
                Some((b, s, _)) => banded < *b || (banded == *b && seq < s),
            };
            if better {
                best = Some((banded, *seq, Selection { leaf: idx, addr: leaf.addr, key }));
            }
        }
        best.map(|(_, _, sel)| sel)
    }

    /// Records a transmission; frees the leaf when its mask empties.
    ///
    /// # Panics
    ///
    /// Panics if the leaf is empty or the port's bit was clear.
    pub fn commit(&mut self, idx: usize, port: Port) -> Option<SlotAddr> {
        let (leaf, _) =
            self.leaves.get_mut(idx).and_then(Option::as_mut).expect("committing an empty leaf");
        assert!(leaf.eligible_for(port), "committing a port whose bit is clear");
        self.version += 1;
        if leaf.clear_port(port) {
            let addr = leaf.addr;
            self.leaves[idx] = None;
            self.free.push(idx);
            self.live -= 1;
            Some(addr)
        } else {
            None
        }
    }

    /// Iterates live leaves.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Leaf)> {
        self.leaves.iter().enumerate().filter_map(|(i, l)| l.as_ref().map(|(l, _)| (i, l)))
    }

    /// Heap bytes currently allocated behind the scheduler — zero until
    /// the first insert.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.leaves.capacity() * std::mem::size_of::<Option<(Leaf, u64)>>()
            + self.free.capacity() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::tree::ComparatorTree;
    use proptest::prelude::*;
    use rtr_types::ids::Direction;

    const XP: Port = Port::Dir(Direction::XPlus);

    fn clock() -> SlotClock {
        SlotClock::new(8)
    }

    fn leaf(l: u64, d: u32, addr: u16) -> Leaf {
        Leaf { l: clock().wrap(l), delay: d, port_mask: XP.mask(), addr: SlotAddr(addr) }
    }

    #[test]
    fn fifo_within_band_edf_across_bands() {
        let mut s = BandedScheduler::new(16, clock(), LatePolicy::Saturate, 3); // 8-slot bands
                                                                                // Laxities 5 and 2 share band 0: FIFO order wins (addr 0 first).
        s.insert(leaf(0, 5, 0)).unwrap();
        s.insert(leaf(0, 2, 1)).unwrap();
        // Laxity 20 is band 2: always later.
        s.insert(leaf(0, 20, 2)).unwrap();
        let t = clock().wrap(0);
        let first = s.select(XP, t).unwrap();
        assert_eq!(first.addr, SlotAddr(0), "same band → arrival order");
        s.commit(first.leaf, XP);
        assert_eq!(s.select(XP, t).unwrap().addr, SlotAddr(1));
    }

    #[test]
    fn cross_band_ordering_is_exact() {
        let mut s = BandedScheduler::new(16, clock(), LatePolicy::Saturate, 3);
        s.insert(leaf(0, 30, 0)).unwrap(); // band 3
        s.insert(leaf(0, 9, 1)).unwrap(); // band 1
        let sel = s.select(XP, clock().wrap(0)).unwrap();
        assert_eq!(sel.addr, SlotAddr(1));
    }

    #[test]
    fn on_time_always_beats_early_regardless_of_band() {
        let mut s = BandedScheduler::new(16, clock(), LatePolicy::Saturate, 5);
        s.insert(leaf(10, 100, 0)).unwrap(); // early by 5 at t = 5
        s.insert(leaf(0, 120, 1)).unwrap(); // on-time, huge laxity
        let sel = s.select(XP, clock().wrap(5)).unwrap();
        assert_eq!(sel.addr, SlotAddr(1));
        assert!(sel.key.is_on_time());
    }

    #[test]
    fn zero_shift_matches_exact_tree() {
        let mut banded = BandedScheduler::new(32, clock(), LatePolicy::Saturate, 0);
        let mut tree = ComparatorTree::new(32, clock(), LatePolicy::Saturate);
        for i in 0..20u16 {
            let l = u64::from(i) * 3 % 40;
            let d = 4 + u32::from(i) * 7 % 60;
            banded.insert(leaf(l, d, i)).unwrap();
            tree.insert(leaf(l, d, i)).unwrap();
        }
        let t = clock().wrap(25);
        assert_eq!(
            banded.select(XP, t).unwrap().key.value(),
            tree.select(XP, t).unwrap().key.value(),
            "band width 1 must pick a minimum-key packet"
        );
    }

    proptest! {
        /// The banded winner's key never exceeds the exact minimum by more
        /// than one band width — the bounded-inversion property admission
        /// compensates with a wider η.
        #[test]
        fn inversion_is_bounded_by_band_width(
            shift in 0u32..5,
            t_abs in 100u64..10_000,
            leaves in proptest::collection::vec((0u64..60, 0u32..100, 0u16..64), 1..24),
        ) {
            let c = clock();
            let mut banded = BandedScheduler::new(64, c, LatePolicy::Saturate, shift);
            let mut tree = ComparatorTree::new(64, c, LatePolicy::Saturate);
            for (off, extra, addr) in &leaves {
                // Keep packets in the admitted (not-late) regime.
                let l_abs = t_abs - (off % 50);
                let d = ((t_abs - l_abs) as u32 + extra % 60).min(127);
                let lf = Leaf {
                    l: c.wrap(l_abs),
                    delay: d,
                    port_mask: XP.mask(),
                    addr: SlotAddr(*addr),
                };
                banded.insert(lf).unwrap();
                tree.insert(lf).unwrap();
            }
            let t = c.wrap(t_abs);
            let approx = banded.select(XP, t).unwrap();
            let exact = tree.select(XP, t).unwrap();
            prop_assert!(approx.key.value() >= exact.key.value());
            prop_assert!(
                u64::from(approx.key.value()) < u64::from(exact.key.value()) + (1u64 << shift),
                "inversion beyond one band: approx {} exact {} shift {}",
                approx.key.value(), exact.key.value(), shift
            );
        }
    }
}
