//! A stateful link scheduler built directly on the Table 1 reference
//! discipline (paper §2).
//!
//! Where [`crate::sched::tree::ComparatorTree`] models the hardware — keys
//! and a comparator tournament — this scheduler keeps the same leaf state
//! but decides each selection by evaluating the three-queue discipline of
//! [`crate::sched::reference::ReferenceScheduler`]. It exists so the
//! ablation experiments can run the *specification* through the exact same
//! router code path as the two implementations and compare outcomes, and so
//! property tests have a stateful oracle with the full
//! insert/select/commit lifecycle.
//!
//! The reference discipline treats late packets as maximally urgent, i.e.
//! [`LatePolicy::Saturate`]; configuration validation rejects the oracle
//! under [`LatePolicy::Wrap`].

use crate::memory::SlotAddr;
use crate::sched::leaf::Leaf;
use crate::sched::reference::{ReferenceChoice, ReferenceScheduler};
use crate::sched::tree::Selection;
use rtr_types::clock::{LogicalTime, SlotClock};
use rtr_types::ids::Port;
use rtr_types::key::{LatePolicy, SortKey};

/// The Table 1 discipline with the same leaf lifecycle as the comparator
/// tree.
#[derive(Debug)]
pub struct OracleScheduler {
    /// Leaf capacity; storage is materialised on first insert.
    capacity: usize,
    leaves: Vec<Option<Leaf>>,
    free: Vec<usize>,
    clock: SlotClock,
    reference: ReferenceScheduler,
    version: u64,
    live: usize,
}

impl OracleScheduler {
    /// Creates an oracle with `capacity` leaves.
    ///
    /// # Panics
    ///
    /// Panics under [`LatePolicy::Wrap`]: the reference discipline has no
    /// notion of aliased late keys.
    #[must_use]
    pub fn new(capacity: usize, clock: SlotClock, late_policy: LatePolicy) -> Self {
        assert!(
            late_policy == LatePolicy::Saturate,
            "the oracle scheduler implements Table 1, which saturates late packets"
        );
        OracleScheduler {
            capacity,
            leaves: Vec::new(),
            free: Vec::new(),
            clock,
            reference: ReferenceScheduler::new(clock),
            version: 0,
            live: 0,
        }
    }

    /// Number of buffered packets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no packets are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Mutation counter (for selection caching).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Inserts a packet's scheduler state, returning its leaf index.
    ///
    /// # Errors
    ///
    /// Gives the leaf back if every leaf is occupied.
    pub fn insert(&mut self, leaf: Leaf) -> Result<usize, Leaf> {
        debug_assert!(leaf.port_mask != 0, "inserting a leaf with an empty mask");
        if self.leaves.len() < self.capacity {
            // High-to-low free list: pops hand out index 0 first, matching
            // the eager construction leaf for leaf.
            self.leaves = (0..self.capacity).map(|_| None).collect();
            self.free = (0..self.capacity).rev().collect();
        }
        let Some(idx) = self.free.pop() else {
            return Err(leaf);
        };
        debug_assert!(self.leaves[idx].is_none());
        self.leaves[idx] = Some(leaf);
        self.live += 1;
        self.version += 1;
        Ok(idx)
    }

    /// Evaluates Table 1 for `port` at time `t`. The horizon is left to the
    /// caller (as with the tree, the winning key's class carries the
    /// early/on-time distinction and the port applies §3.2's horizon check
    /// before transmitting an early winner), so the discipline is evaluated
    /// with an unbounded horizon here.
    #[must_use]
    pub fn select(&self, port: Port, t: LogicalTime) -> Option<Selection> {
        let live = self.leaves.iter().enumerate().filter_map(|(i, l)| l.as_ref().map(|l| (i, l)));
        let choice = self.reference.choose(live, port, t, self.clock.range());
        let idx = match choice {
            ReferenceChoice::OnTime(idx) | ReferenceChoice::EarlyWithinHorizon(idx) => idx,
            ReferenceChoice::Nothing => return None,
        };
        let leaf = self.leaves[idx].as_ref().expect("reference chose a live leaf");
        let key = SortKey::compute(&self.clock, leaf.l, leaf.delay, t, LatePolicy::Saturate);
        Some(Selection { leaf: idx, addr: leaf.addr, key })
    }

    /// Records that `port` transmitted leaf `idx`; frees the leaf when the
    /// last port commits.
    ///
    /// # Panics
    ///
    /// Panics if the leaf is empty or the port's bit was not set.
    pub fn commit(&mut self, idx: usize, port: Port) -> Option<SlotAddr> {
        let leaf =
            self.leaves.get_mut(idx).and_then(Option::as_mut).expect("committing an empty leaf");
        assert!(leaf.eligible_for(port), "committing a port whose bit is clear");
        self.version += 1;
        if leaf.clear_port(port) {
            let addr = leaf.addr;
            self.leaves[idx] = None;
            self.free.push(idx);
            self.live -= 1;
            Some(addr)
        } else {
            None
        }
    }

    /// Iterates the live leaves (index, leaf).
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Leaf)> {
        self.leaves.iter().enumerate().filter_map(|(i, l)| l.as_ref().map(|l| (i, l)))
    }

    /// Heap bytes currently allocated behind the scheduler — zero until
    /// the first insert.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.leaves.capacity() * std::mem::size_of::<Option<Leaf>>()
            + self.free.capacity() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_types::ids::Direction;

    const XP: Port = Port::Dir(Direction::XPlus);

    fn clock() -> SlotClock {
        SlotClock::new(8)
    }

    fn leaf(l: u64, d: u32, mask: u8, addr: u16) -> Leaf {
        Leaf { l: clock().wrap(l), delay: d, port_mask: mask, addr: SlotAddr(addr) }
    }

    #[test]
    fn oracle_round_trips_a_leaf() {
        let mut o = OracleScheduler::new(4, clock(), LatePolicy::Saturate);
        let idx = o.insert(leaf(0, 5, XP.mask(), 2)).unwrap();
        let sel = o.select(XP, clock().wrap(1)).unwrap();
        assert_eq!(sel.leaf, idx);
        assert_eq!(sel.addr, SlotAddr(2));
        assert!(sel.key.is_on_time());
        assert_eq!(o.commit(idx, XP), Some(SlotAddr(2)));
        assert!(o.is_empty());
    }

    #[test]
    fn oracle_reports_early_winners_for_the_port_to_gate() {
        let mut o = OracleScheduler::new(4, clock(), LatePolicy::Saturate);
        o.insert(leaf(30, 5, XP.mask(), 0)).unwrap();
        let sel = o.select(XP, clock().wrap(20)).unwrap();
        assert!(sel.key.is_early());
        assert_eq!(sel.key.time_field(), 10, "the port compares this against its horizon");
    }

    #[test]
    #[should_panic(expected = "Table 1")]
    fn oracle_rejects_wrap_policy() {
        let _ = OracleScheduler::new(4, clock(), LatePolicy::Wrap);
    }
}
