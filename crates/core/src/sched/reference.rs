//! The three-queue reference scheduler (paper §2, Table 1).
//!
//! An independent software implementation of the real-time channels link
//! discipline, written directly from Table 1 rather than from keys and
//! comparators:
//!
//! 1. **Queue 1** — on-time time-constrained packets, priority by deadline
//!    `ℓ(m) + d`;
//! 2. **Queue 2** — best-effort packets (handled by the ports, not here);
//! 3. **Queue 3** — early time-constrained packets, priority by logical
//!    arrival time `ℓ(m)`, transmissible only within the horizon `h`.
//!
//! The comparator tree of [`crate::sched::tree`] must make exactly the same
//! choice for every reachable state; the property tests in this module prove
//! that equivalence on randomized states, which is how we validate the key
//! encoding of Figure 4.

use crate::sched::leaf::Leaf;
use rtr_types::clock::{LogicalTime, SlotClock};
use rtr_types::ids::Port;

/// What the reference discipline decided for a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReferenceChoice {
    /// An on-time packet must be transmitted (leaf index given); this
    /// preempts best-effort traffic.
    OnTime(usize),
    /// No on-time packet exists; best-effort traffic goes first, but if none
    /// is waiting the given early packet may be transmitted (it is within
    /// the horizon).
    EarlyWithinHorizon(usize),
    /// Only early packets beyond the horizon (or nothing) are buffered: the
    /// link serves best-effort traffic or idles.
    Nothing,
}

/// The Table 1 reference scheduler. Stateless: it evaluates a set of leaves.
#[derive(Debug, Clone, Copy)]
pub struct ReferenceScheduler {
    clock: SlotClock,
}

impl ReferenceScheduler {
    /// Creates a reference scheduler over the given clock.
    #[must_use]
    pub fn new(clock: SlotClock) -> Self {
        ReferenceScheduler { clock }
    }

    /// Evaluates Table 1 for `port` at time `t` over `leaves`
    /// (index, leaf) pairs, with horizon `h`.
    ///
    /// Ties resolve to the lowest leaf index, matching the leftmost-wins
    /// behaviour of the comparator tree.
    #[must_use]
    pub fn choose<'a>(
        &self,
        leaves: impl Iterator<Item = (usize, &'a Leaf)>,
        port: Port,
        t: LogicalTime,
        h: u32,
    ) -> ReferenceChoice {
        // Queue 1: on-time packets by (deadline laxity, index).
        let mut best_on_time: Option<(u32, usize)> = None;
        // Queue 3: early packets by (time to arrival, index).
        let mut best_early: Option<(u32, usize)> = None;
        for (idx, leaf) in leaves {
            if !leaf.eligible_for(port) {
                continue;
            }
            if self.clock.is_early(leaf.l, t) {
                let wait = self.clock.until(leaf.l, t);
                if best_early.is_none_or(|(w, _)| wait < w) {
                    best_early = Some((wait, idx));
                }
            } else {
                let deadline = leaf.deadline(&self.clock);
                let laxity = if self.clock.has_passed(deadline, t) {
                    0 // late packets are maximally urgent (LatePolicy::Saturate)
                } else {
                    self.clock.until(deadline, t)
                };
                if best_on_time.is_none_or(|(lx, _)| laxity < lx) {
                    best_on_time = Some((laxity, idx));
                }
            }
        }
        if let Some((_, idx)) = best_on_time {
            ReferenceChoice::OnTime(idx)
        } else if let Some((wait, idx)) = best_early {
            if wait <= h {
                ReferenceChoice::EarlyWithinHorizon(idx)
            } else {
                ReferenceChoice::Nothing
            }
        } else {
            ReferenceChoice::Nothing
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::SlotAddr;
    use crate::sched::tree::ComparatorTree;
    use proptest::prelude::*;
    use rtr_types::ids::Direction;
    use rtr_types::key::LatePolicy;

    const XP: Port = Port::Dir(Direction::XPlus);

    fn clock() -> SlotClock {
        SlotClock::new(8)
    }

    fn leaf(l: u64, d: u32, mask: u8, addr: u16) -> Leaf {
        Leaf { l: clock().wrap(l), delay: d, port_mask: mask, addr: SlotAddr(addr) }
    }

    #[test]
    fn on_time_wins_over_early() {
        let r = ReferenceScheduler::new(clock());
        let leaves = [leaf(20, 5, 0b10, 0), leaf(5, 100, 0b10, 1)];
        let choice = r.choose(leaves.iter().enumerate(), XP, clock().wrap(10), 100);
        assert_eq!(choice, ReferenceChoice::OnTime(1));
    }

    #[test]
    fn early_outside_horizon_yields_nothing() {
        let r = ReferenceScheduler::new(clock());
        let leaves = [leaf(20, 5, 0b10, 0)];
        assert_eq!(
            r.choose(leaves.iter().enumerate(), XP, clock().wrap(10), 9),
            ReferenceChoice::Nothing
        );
        assert_eq!(
            r.choose(leaves.iter().enumerate(), XP, clock().wrap(10), 10),
            ReferenceChoice::EarlyWithinHorizon(0)
        );
    }

    #[test]
    fn empty_set_yields_nothing() {
        let r = ReferenceScheduler::new(clock());
        assert_eq!(r.choose(std::iter::empty(), XP, clock().wrap(0), 10), ReferenceChoice::Nothing);
    }

    /// Strategy generating leaves in the admissible regime around a time.
    fn arb_leaves(t_abs: u64) -> impl Strategy<Value = Vec<Leaf>> {
        proptest::collection::vec(
            (-80i64..80, 0u32..127, 1u8..32, 0u16..64).prop_map(move |(off, extra, mask, addr)| {
                // Generate l in [t-80, t+80) and a deadline at or after t so
                // no packet is late (the admitted-traffic regime).
                let l_abs = (t_abs as i64 + off).max(0) as u64;
                let d_min = t_abs.saturating_sub(l_abs) as u32;
                let d = (d_min + extra).min(127);
                Leaf {
                    l: SlotClock::new(8).wrap(l_abs),
                    delay: d,
                    port_mask: mask,
                    addr: SlotAddr(addr),
                }
            }),
            0..40,
        )
    }

    proptest! {
        /// The comparator tree and the Table 1 reference model agree on
        /// every port, time, and horizon: the central correctness property
        /// of the Figure 4/5 key-and-tree design.
        #[test]
        fn tree_matches_reference(
            t_abs in 100u64..100_000,
            leaves in (100u64..100_000).prop_flat_map(arb_leaves),
            h in 0u32..127,
        ) {
            let c = clock();
            let t = c.wrap(t_abs);
            let reference = ReferenceScheduler::new(c);
            let mut tree = ComparatorTree::new(64, c, LatePolicy::Saturate);
            for leaf in &leaves {
                tree.insert(*leaf).unwrap();
            }
            for port in Port::ALL {
                let tree_sel = tree.select(port, t);
                let ref_choice = reference.choose(tree.iter(), port, t, h);
                match ref_choice {
                    ReferenceChoice::OnTime(idx) => {
                        let sel = tree_sel.expect("tree missed an on-time packet");
                        prop_assert!(sel.key.is_on_time());
                        prop_assert_eq!(sel.leaf, idx);
                    }
                    ReferenceChoice::EarlyWithinHorizon(idx) => {
                        let sel = tree_sel.expect("tree missed an early packet");
                        prop_assert!(sel.key.is_early());
                        prop_assert_eq!(sel.leaf, idx);
                        prop_assert!(sel.key.time_field() <= h);
                    }
                    ReferenceChoice::Nothing => {
                        // The tree may still report an early packet beyond
                        // the horizon; the port-level check rejects it.
                        if let Some(sel) = tree_sel {
                            prop_assert!(sel.key.is_early());
                            prop_assert!(sel.key.time_field() > h);
                        }
                    }
                }
            }
        }
    }
}
