//! Per-packet scheduler state: one leaf of the comparator tree (Figure 5).
//!
//! Each leaf stores the packet's logical arrival time `ℓ(m)`, its local delay
//! bound `d` (so the deadline `ℓ(m) + d` is known), the bit mask of output
//! ports still waiting to transmit it, and the address of the packet's data
//! in the shared memory. A mask of zero means the leaf — and the memory
//! slot — are free.

use crate::memory::SlotAddr;
use rtr_types::clock::{LogicalTime, SlotClock};
use rtr_types::ids::Port;

/// Scheduler state for one buffered time-constrained packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Leaf {
    /// Logical arrival time `ℓ(m)` at this node.
    pub l: LogicalTime,
    /// Local delay bound `d` in slots; the local deadline is `ℓ(m) + d`.
    pub delay: u32,
    /// Output ports that still have to transmit this packet (multicast sets
    /// several bits at arrival; each port clears its own bit).
    pub port_mask: u8,
    /// Address of the packet in the shared memory.
    pub addr: SlotAddr,
}

impl Leaf {
    /// The packet's local deadline `ℓ(m) + d`.
    #[must_use]
    pub fn deadline(&self, clock: &SlotClock) -> LogicalTime {
        clock.add(self.l, self.delay)
    }

    /// Whether `port` still has to transmit this packet.
    #[must_use]
    pub fn eligible_for(&self, port: Port) -> bool {
        self.port_mask & port.mask() != 0
    }

    /// Clears `port`'s bit; returns `true` if the leaf is now empty (all
    /// ports served) and the memory slot can be freed.
    pub fn clear_port(&mut self, port: Port) -> bool {
        self.port_mask &= !port.mask();
        self.port_mask == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_types::ids::Direction;

    #[test]
    fn deadline_wraps_with_clock() {
        let clock = SlotClock::new(8);
        let leaf = Leaf { l: clock.wrap(250), delay: 10, port_mask: 0b10, addr: SlotAddr(0) };
        assert_eq!(leaf.deadline(&clock).raw(), 4);
    }

    #[test]
    fn multicast_mask_clears_per_port() {
        let clock = SlotClock::new(8);
        let mut leaf = Leaf {
            l: clock.wrap(0),
            delay: 1,
            port_mask: Port::Dir(Direction::XPlus).mask() | Port::Local.mask(),
            addr: SlotAddr(3),
        };
        assert!(leaf.eligible_for(Port::Local));
        assert!(leaf.eligible_for(Port::Dir(Direction::XPlus)));
        assert!(!leaf.eligible_for(Port::Dir(Direction::YPlus)));
        assert!(!leaf.clear_port(Port::Local), "one port still pending");
        assert!(!leaf.eligible_for(Port::Local));
        assert!(leaf.clear_port(Port::Dir(Direction::XPlus)), "last port frees the leaf");
    }
}
