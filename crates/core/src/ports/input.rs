//! Input-port state machines (paper §3.1–§3.4).
//!
//! Each input port handles both virtual channels of its link:
//!
//! * **Time-constrained** symbols are reassembled into whole packets
//!   (store-and-forward); a completed packet enters the *arrival pipeline*
//!   and becomes schedulable after the header-lookup and memory-store
//!   latency.
//! * **Best-effort** bytes land in the small flit buffer. The port inspects
//!   the first two header bytes to make the dimension-ordered routing
//!   decision, rewrites the offset bytes, and marks each byte forwardable
//!   after the per-hop pipeline latency (synchronisation, header processing,
//!   five-byte chunk accumulation, bus grant — the `30 + b` overheads of
//!   §5.2). Flow control guarantees the flit buffer never overflows: the
//!   upstream transmitter spends a credit per byte and this port returns the
//!   credit when the byte leaves.

use std::collections::VecDeque;

use rtr_types::flit::BeByte;
use rtr_types::ids::Port;
use rtr_types::packet::{BeHeader, PacketTrace, TcPacket};
use rtr_types::time::Cycle;

/// A best-effort byte that has been routed and is waiting in the flit
/// buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutedByte {
    /// Earliest cycle the byte may leave on an output link.
    pub ready_at: Cycle,
    /// The (possibly header-rewritten) byte.
    pub byte: BeByte,
    /// Output port the byte is routed to.
    pub out: Port,
}

/// What [`InputPort::push_be`] did with a byte — all-zero in fault-free
/// runs. Fault-torn streams (a crashed receiver dropped symbols upstream,
/// a byzantine neighbour forged credits) are shed deliberately: every
/// dropped byte is reported so the caller can count it and refund its
/// upstream flow-control credit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BePush {
    /// Bytes destroyed (the incoming byte and/or a held header byte);
    /// each consumed an upstream credit that must be refunded.
    pub dropped: u8,
    /// A packet mid-stream lost its tail (the sink's reassembly will
    /// count it `be_malformed` when the length check fails).
    pub truncated: bool,
}

/// Partial arrivals cleared by [`InputPort::abort_partial`] (crash
/// recovery).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbortedRx {
    /// A time-constrained packet was mid-arrival and is abandoned.
    pub tc_aborted: bool,
    /// Held best-effort header bytes dropped (credits to refund).
    pub be_dropped: u8,
    /// A best-effort packet was streaming and is now truncated.
    pub be_truncated: bool,
}

/// Routing progress of the best-effort stream currently crossing this port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BeRoute {
    /// Waiting for a head byte.
    Idle,
    /// Got the x-offset byte; waiting for the y-offset to decide the route.
    GotX { x: u8, trace: Option<PacketTrace>, arrived: Cycle },
    /// Routing decision made; body bytes stream through.
    Streaming { out: Port },
}

/// One of the router's five input ports.
#[derive(Debug)]
pub struct InputPort {
    /// Per-hop best-effort pipeline latency in cycles (sync + header + chunk
    /// + bus grant).
    pipeline_latency: Cycle,
    /// Latency from a time-constrained packet's last byte to it becoming
    /// schedulable (sync + header lookup + memory-store chunks).
    tc_store_latency: Cycle,
    /// Flit-buffer capacity in bytes.
    flit_capacity: usize,
    /// Time-constrained packet currently arriving: packet and symbols still
    /// to come. `None` in the packet slot means the packet is cutting
    /// through (§7 virtual cut-through): the symbols are consumed for
    /// timing but the output port already owns the packet.
    tc_rx: Option<(Option<TcPacket>, usize)>,
    /// Fully received packets waiting out the arrival pipeline.
    tc_pending: VecDeque<(Cycle, TcPacket)>,
    /// Routed best-effort bytes in the flit buffer.
    be_fifo: VecDeque<RoutedByte>,
    be_route: BeRoute,
}

impl InputPort {
    /// Creates an input port.
    #[must_use]
    pub fn new(pipeline_latency: Cycle, tc_store_latency: Cycle, flit_capacity: usize) -> Self {
        InputPort {
            pipeline_latency,
            tc_store_latency,
            flit_capacity,
            tc_rx: None,
            tc_pending: VecDeque::new(),
            be_fifo: VecDeque::new(),
            be_route: BeRoute::Idle,
        }
    }

    /// Bytes currently held on the best-effort channel (routed bytes plus a
    /// held header byte); bounded by the flit capacity via flow control.
    #[must_use]
    pub fn be_occupancy(&self) -> usize {
        self.be_fifo.len() + usize::from(matches!(self.be_route, BeRoute::GotX { .. }))
    }

    /// Free best-effort buffer space in bytes.
    #[must_use]
    pub fn be_free_space(&self) -> usize {
        self.flit_capacity - self.be_occupancy()
    }

    /// Accepts the first symbol of a time-constrained packet that will be
    /// buffered (store-and-forward).
    ///
    /// The link protocol never interleaves two time-constrained packets on
    /// one channel, but a crashed receiver can lose a packet's tail
    /// symbols upstream; a start arriving while a packet is still
    /// mid-arrival therefore abandons the torn predecessor. Returns `true`
    /// when that happened (the caller counts it).
    pub fn push_tc_start(&mut self, now: Cycle, packet: TcPacket) -> bool {
        let truncated = self.tc_rx.take().is_some();
        let remaining = packet.wire_len() - 1;
        if remaining == 0 {
            self.tc_pending.push_back((now + self.tc_store_latency, packet));
        } else {
            self.tc_rx = Some((Some(packet), remaining));
        }
        truncated
    }

    /// Accepts the first symbol of a packet that is *cutting through*: the
    /// remaining symbols are consumed for timing only and the packet never
    /// enters the arrival pipeline (the output port streams it directly).
    ///
    /// Returns `true` if a torn mid-arrival packet was abandoned (see
    /// [`Self::push_tc_start`]).
    pub fn push_tc_start_cut(&mut self, wire_len: usize) -> bool {
        let truncated = self.tc_rx.take().is_some();
        if wire_len > 1 {
            self.tc_rx = Some((None, wire_len - 1));
        }
        truncated
    }

    /// Accepts a continuation symbol of the in-flight time-constrained
    /// packet. Returns `false` for an orphan continuation — its packet's
    /// head was destroyed by a fault upstream — which is shed (the caller
    /// counts it).
    pub fn push_tc_cont(&mut self, now: Cycle) -> bool {
        let Some((packet, remaining)) = self.tc_rx.take() else {
            return false;
        };
        if remaining == 1 {
            if let Some(packet) = packet {
                self.tc_pending.push_back((now + self.tc_store_latency, packet));
            }
        } else {
            self.tc_rx = Some((packet, remaining - 1));
        }
        true
    }

    /// Clears partial arrivals on both virtual channels — the crash-restore
    /// path: a restored node's reassembly registers are undefined, so a
    /// mid-arrival time-constrained packet is abandoned and the best-effort
    /// route machine reset to hunt for the next head byte. Completed
    /// packets (the arrival pipeline, the flit buffer) are intact and keep
    /// flowing.
    pub fn abort_partial(&mut self) -> AbortedRx {
        let tc_aborted = self.tc_rx.take().is_some();
        let (be_dropped, be_truncated) = match self.be_route {
            BeRoute::Idle => (0, false),
            BeRoute::GotX { .. } => (1, false),
            BeRoute::Streaming { .. } => (0, true),
        };
        self.be_route = BeRoute::Idle;
        AbortedRx { tc_aborted, be_dropped, be_truncated }
    }

    /// Pops the next packet whose arrival pipeline has completed, if any.
    pub fn take_ready_tc(&mut self, now: Cycle) -> Option<TcPacket> {
        match self.tc_pending.front() {
            Some((ready_at, _)) if *ready_at <= now => self.tc_pending.pop_front().map(|(_, p)| p),
            _ => None,
        }
    }

    /// Number of packets sitting in the arrival pipeline.
    #[must_use]
    pub fn tc_pending_len(&self) -> usize {
        self.tc_pending.len()
    }

    /// Accepts one best-effort byte from the link (or the local injector).
    ///
    /// With honest flow control and coherent links the returned [`BePush`]
    /// is all-zero. Faults break both assumptions — a byzantine neighbour
    /// can forge credits (overflow) and a crashed receiver upstream can
    /// tear frames (orphan fragments, missing tails, a head mid-stream) —
    /// so instead of asserting, the port sheds exactly the bytes it cannot
    /// frame and reports them for counting and credit refund.
    pub fn push_be(&mut self, now: Cycle, byte: BeByte) -> BePush {
        let mut outcome = BePush::default();
        if self.be_occupancy() >= self.flit_capacity {
            // Only reachable via forged credits: honest flow control never
            // sends into a full buffer. Shed the byte; if it was a tail,
            // resync the framer so the next packet starts clean.
            outcome.dropped = 1;
            if byte.tail {
                outcome.truncated = matches!(self.be_route, BeRoute::Streaming { .. });
                self.be_route = BeRoute::Idle;
            }
            return outcome;
        }
        match self.be_route {
            BeRoute::Idle => {
                if !byte.head || byte.tail {
                    // Orphan fragment of a torn packet (or a runt shorter
                    // than its 4 header bytes): shed it.
                    outcome.dropped = 1;
                    return outcome;
                }
                self.be_route = BeRoute::GotX { x: byte.byte, trace: byte.trace, arrived: now };
            }
            BeRoute::GotX { x, trace, arrived } => {
                if byte.head || byte.tail {
                    // The held x-offset belongs to a torn packet: shed it,
                    // then refeed the byte to the idle framer.
                    outcome.dropped = 1;
                    self.be_route = BeRoute::Idle;
                    let refeed = self.push_be(now, byte);
                    outcome.dropped += refeed.dropped;
                    return outcome;
                }
                let header = BeHeader { x_off: x as i8, y_off: byte.byte as i8, length: 0 };
                let (out, rewritten) = header.dimension_ordered_step();
                self.be_fifo.push_back(RoutedByte {
                    ready_at: arrived + self.pipeline_latency,
                    byte: BeByte { byte: rewritten.x_off as u8, head: true, tail: false, trace },
                    out,
                });
                self.be_fifo.push_back(RoutedByte {
                    ready_at: now + self.pipeline_latency,
                    byte: BeByte::body(rewritten.y_off as u8),
                    out,
                });
                self.be_route = BeRoute::Streaming { out };
            }
            BeRoute::Streaming { out } => {
                if byte.head {
                    // The streaming packet's tail was destroyed upstream:
                    // it is truncated (the sink's length check will flag
                    // it) and this byte starts the next packet.
                    outcome.truncated = true;
                    self.be_route = BeRoute::Idle;
                    let refeed = self.push_be(now, byte);
                    outcome.dropped += refeed.dropped;
                    return outcome;
                }
                self.be_fifo.push_back(RoutedByte {
                    ready_at: now + self.pipeline_latency,
                    byte,
                    out,
                });
                if byte.tail {
                    self.be_route = BeRoute::Idle;
                }
            }
        }
        outcome
    }

    /// Whether the byte at the head of the flit buffer is routed to `out`
    /// and ready to leave at `now`.
    #[must_use]
    pub fn be_front_for(&self, out: Port, now: Cycle) -> Option<&RoutedByte> {
        self.be_fifo.front().filter(|b| b.out == out && b.ready_at <= now)
    }

    /// Removes and returns the head byte (after [`Self::be_front_for`]
    /// confirmed it). The caller must return one credit upstream.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn pop_be(&mut self) -> RoutedByte {
        self.be_fifo.pop_front().expect("popping an empty flit buffer")
    }

    /// Whether a time-constrained packet is mid-arrival on this port. While
    /// true the port expects a continuation symbol every cycle, so the chip
    /// can never be quiescent.
    #[must_use]
    pub fn tc_rx_active(&self) -> bool {
        self.tc_rx.is_some()
    }

    /// The cycle at which the oldest packet in the arrival pipeline becomes
    /// schedulable, if any.
    #[must_use]
    pub fn next_tc_ready(&self) -> Option<Cycle> {
        self.tc_pending.front().map(|(ready_at, _)| *ready_at)
    }

    /// The cycle at which the head flit-buffer byte becomes forwardable, if
    /// any. A held header byte (an x-offset waiting for its y-offset) is
    /// frozen until the next link byte arrives, so it is not an event source.
    #[must_use]
    pub fn next_be_ready(&self) -> Option<Cycle> {
        self.be_fifo.front().map(|b| b.ready_at)
    }

    /// The head byte of the flit buffer, regardless of readiness.
    #[must_use]
    pub fn be_head(&self) -> Option<&RoutedByte> {
        self.be_fifo.front()
    }

    /// Heap bytes behind the port's queues (allocated capacity) — zero
    /// until traffic first crosses the port.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.tc_pending.capacity() * std::mem::size_of::<(Cycle, TcPacket)>()
            + self.be_fifo.capacity() * std::mem::size_of::<RoutedByte>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_types::clock::SlotClock;
    use rtr_types::ids::{ConnectionId, Direction};

    fn tc_packet(payload_len: usize) -> TcPacket {
        TcPacket {
            conn: ConnectionId(1),
            arrival: SlotClock::new(8).wrap(0),
            payload: vec![0xAA; payload_len].into(),
            trace: PacketTrace::default(),
        }
    }

    fn port() -> InputPort {
        InputPort::new(10, 6, 10)
    }

    #[test]
    fn tc_packet_ready_after_all_symbols_plus_store_latency() {
        let mut p = port();
        p.push_tc_start(100, tc_packet(18)); // 20 symbols: cycles 100..=119
        for i in 1..20 {
            assert!(p.take_ready_tc(100 + i).is_none());
            p.push_tc_cont(100 + i);
        }
        // Last symbol at cycle 119; ready at 119 + 6 = 125.
        assert!(p.take_ready_tc(124).is_none());
        assert!(p.take_ready_tc(125).is_some());
        assert!(p.take_ready_tc(126).is_none(), "only one packet");
    }

    #[test]
    fn be_header_rewrite_and_routing() {
        let mut p = port();
        // Packet with x_off = +2, y_off = -1, length 1: bytes
        // [2, 0xFF, 1, 0, payload].
        p.push_be(0, BeByte { byte: 2, head: true, tail: false, trace: None });
        p.push_be(1, BeByte::body(0xFF));
        p.push_be(2, BeByte::body(1));
        p.push_be(3, BeByte::body(0));
        p.push_be(4, BeByte { byte: 0x55, head: false, tail: true, trace: None });
        assert_eq!(p.be_occupancy(), 5);

        // Routed towards +x with x offset decremented to 1.
        let front = p.be_front_for(Port::Dir(Direction::XPlus), 100).unwrap();
        assert!(front.byte.head);
        assert_eq!(front.byte.byte, 1);
        assert_eq!(front.ready_at, 10);

        let bytes: Vec<u8> = (0..5).map(|_| p.pop_be().byte.byte).collect();
        assert_eq!(bytes, vec![1, 0xFF, 1, 0, 0x55]);
        assert_eq!(p.be_occupancy(), 0);
    }

    #[test]
    fn be_zero_offsets_route_to_local() {
        let mut p = port();
        p.push_be(0, BeByte { byte: 0, head: true, tail: false, trace: None });
        p.push_be(1, BeByte::body(0));
        assert!(p.be_front_for(Port::Local, 11).is_some());
    }

    #[test]
    fn be_y_routing_after_x_exhausted() {
        let mut p = port();
        p.push_be(0, BeByte { byte: 0, head: true, tail: false, trace: None });
        p.push_be(1, BeByte::body(0xFE)); // y_off = -2
        let front = p.be_front_for(Port::Dir(Direction::YMinus), 11).unwrap();
        assert_eq!(front.byte.byte, 0, "x offset unchanged at 0");
        p.pop_be();
        assert_eq!(p.pop_be().byte.byte, 0xFF, "y offset stepped from -2 to -1");
    }

    #[test]
    fn bytes_not_ready_before_pipeline_latency() {
        let mut p = port();
        p.push_be(50, BeByte { byte: 1, head: true, tail: false, trace: None });
        p.push_be(51, BeByte::body(0));
        assert!(p.be_front_for(Port::Dir(Direction::XPlus), 59).is_none());
        assert!(p.be_front_for(Port::Dir(Direction::XPlus), 60).is_some());
    }

    #[test]
    fn occupancy_counts_held_header_byte() {
        let mut p = port();
        assert_eq!(p.be_free_space(), 10);
        p.push_be(0, BeByte { byte: 1, head: true, tail: false, trace: None });
        assert_eq!(p.be_occupancy(), 1, "held x byte counts");
        assert_eq!(p.be_free_space(), 9);
    }

    #[test]
    fn overflow_sheds_bytes_instead_of_panicking() {
        let mut p = InputPort::new(10, 6, 2);
        assert_eq!(
            p.push_be(0, BeByte { byte: 1, head: true, tail: false, trace: None }),
            BePush::default()
        );
        assert_eq!(p.push_be(1, BeByte::body(0)), BePush::default());
        // Forged credits pushed a third byte into a 2-byte buffer: shed.
        assert_eq!(p.push_be(2, BeByte::body(0)), BePush { dropped: 1, truncated: false });
        assert_eq!(p.be_occupancy(), 2, "buffer never exceeds capacity");
    }

    #[test]
    fn interleaved_tc_start_abandons_the_torn_packet() {
        let mut p = port();
        assert!(!p.push_tc_start(0, tc_packet(18)));
        // The first packet's remaining symbols were destroyed upstream; a
        // new start abandons it and the new packet arrives whole.
        assert!(p.push_tc_start(1, tc_packet(18)), "torn predecessor reported");
        for i in 2..21 {
            assert!(p.push_tc_cont(i));
        }
        assert!(p.take_ready_tc(20 + 6).is_some(), "successor unharmed");
        assert!(p.take_ready_tc(10_000).is_none(), "torn packet never surfaces");
    }

    #[test]
    fn orphan_tc_continuation_is_shed() {
        let mut p = port();
        assert!(!p.push_tc_cont(5), "continuation without a start reported");
        assert!(!p.tc_rx_active());
    }

    #[test]
    fn orphan_be_fragments_are_shed_until_the_next_head() {
        let mut p = port();
        // Head lost upstream: body/tail fragments shed one by one.
        assert_eq!(p.push_be(0, BeByte::body(9)), BePush { dropped: 1, truncated: false });
        assert_eq!(
            p.push_be(1, BeByte { byte: 3, head: false, tail: true, trace: None }),
            BePush { dropped: 1, truncated: false }
        );
        assert_eq!(p.be_occupancy(), 0);
        // The next complete packet frames normally.
        p.push_be(2, BeByte { byte: 1, head: true, tail: false, trace: None });
        p.push_be(3, BeByte::body(0));
        assert_eq!(p.be_occupancy(), 2);
    }

    #[test]
    fn head_mid_stream_truncates_and_starts_the_next_packet() {
        let mut p = port();
        p.push_be(0, BeByte { byte: 1, head: true, tail: false, trace: None });
        p.push_be(1, BeByte::body(0));
        p.push_be(2, BeByte::body(2));
        // Tail destroyed upstream; the next packet's head arrives while
        // streaming: predecessor truncated, successor accepted.
        let outcome = p.push_be(3, BeByte { byte: 0, head: true, tail: false, trace: None });
        assert_eq!(outcome, BePush { dropped: 0, truncated: true });
        p.push_be(4, BeByte::body(0));
        // Both the truncated front and the new packet occupy the buffer.
        assert_eq!(p.be_occupancy(), 5);
    }

    #[test]
    fn abort_partial_clears_both_channels() {
        let mut p = port();
        p.push_tc_start(0, tc_packet(18));
        p.push_be(0, BeByte { byte: 1, head: true, tail: false, trace: None });
        let aborted = p.abort_partial();
        assert_eq!(aborted, AbortedRx { tc_aborted: true, be_dropped: 1, be_truncated: false });
        assert!(!p.tc_rx_active(), "port leaps again after the abort");
        assert_eq!(p.be_occupancy(), 0);
        // Streaming abort reports the truncation instead of a held byte.
        p.push_be(2, BeByte { byte: 1, head: true, tail: false, trace: None });
        p.push_be(3, BeByte::body(0));
        let aborted = p.abort_partial();
        assert_eq!(aborted, AbortedRx { tc_aborted: false, be_dropped: 0, be_truncated: true });
    }

    #[test]
    fn cut_through_packets_are_consumed_but_not_enqueued() {
        let mut p = port();
        p.push_tc_start_cut(20);
        for i in 1..20 {
            p.push_tc_cont(i);
        }
        assert!(p.take_ready_tc(10_000).is_none(), "cut packets bypass the pipeline");
        // The channel is free again for a buffered packet.
        p.push_tc_start(100, tc_packet(18));
        for i in 1..20 {
            p.push_tc_cont(100 + i);
        }
        assert!(p.take_ready_tc(100 + 19 + 6).is_some());
    }

    proptest::proptest! {
        /// Arbitrary sequences of best-effort packets (random payload
        /// sizes and offsets) stream through the flit buffer with framing,
        /// routing, and byte order intact.
        #[test]
        fn be_framing_fuzz(
            packets in proptest::collection::vec(
                (proptest::collection::vec(proptest::prelude::any::<u8>(), 0..12), -3i8..=3, -3i8..=3),
                1..4,
            )
        ) {
            use rtr_types::packet::BePacket;
            // Capacity 64 ≥ 3 packets × (4 header + 12 payload) bytes, so
            // the whole sequence fits without draining.
            let mut port = InputPort::new(10, 6, 64);
            let mut now: Cycle = 0;
            let mut expected: Vec<(Port, Vec<u8>)> = Vec::new();
            for (payload, x, y) in &packets {
                let packet = BePacket::new(*x, *y, payload.clone(), PacketTrace::default());
                let (out, stepped) = packet.header.dimension_ordered_step();
                expected.push((
                    out,
                    BePacket {
                        header: BeHeader { length: packet.header.length, ..stepped },
                        ..packet.clone()
                    }
                    .to_wire(),
                ));
                let wire = packet.to_wire();
                for (i, b) in wire.iter().enumerate() {
                    port.push_be(now, BeByte {
                        byte: *b,
                        head: i == 0,
                        tail: i == wire.len() - 1,
                        trace: None,
                    });
                    now += 1;
                }
            }
            // Drain everything and reassemble per packet.
            let mut streams: Vec<(Port, Vec<u8>)> = Vec::new();
            while port.be_occupancy() > 0 {
                let routed = port.pop_be();
                if routed.byte.head {
                    streams.push((routed.out, vec![routed.byte.byte]));
                } else {
                    let last = streams.last_mut().expect("head byte first");
                    proptest::prop_assert_eq!(last.0, routed.out, "route sticky per packet");
                    last.1.push(routed.byte.byte);
                }
            }
            proptest::prop_assert_eq!(&streams, &expected);
        }
    }

    #[test]
    fn back_to_back_be_packets_queue_in_order() {
        let mut p = port();
        // First packet to +x (1 payload byte), second to local.
        for (i, b) in [
            BeByte { byte: 1, head: true, tail: false, trace: None },
            BeByte::body(0),
            BeByte::body(1),
            BeByte::body(0),
            BeByte { byte: 0xA1, head: false, tail: true, trace: None },
        ]
        .into_iter()
        .enumerate()
        {
            p.push_be(i as Cycle, b);
        }
        for (i, b) in [
            BeByte { byte: 0, head: true, tail: false, trace: None },
            BeByte::body(0),
            BeByte::body(0),
            BeByte { byte: 0, head: false, tail: true, trace: None },
        ]
        .into_iter()
        .enumerate()
        {
            p.push_be(5 + i as Cycle, b);
        }
        // Head-of-line: the local-bound packet waits behind the +x packet.
        assert!(p.be_front_for(Port::Local, 1000).is_none());
        for _ in 0..5 {
            assert_eq!(p.pop_be().out, Port::Dir(Direction::XPlus));
        }
        assert!(p.be_front_for(Port::Local, 1000).is_some());
    }
}
