//! Output-port state (paper §3.2, §4.2).
//!
//! Each output port multiplexes its link between the two virtual channels
//! with the fine-grain priority of §3.2: an on-time time-constrained packet
//! preempts best-effort traffic at a byte boundary; best-effort flits consume
//! any excess bandwidth; early time-constrained packets within the horizon
//! fill otherwise-idle cycles.
//!
//! The port also models the shared comparator tree's pipeline: a selection
//! becomes usable `sched_latency` cycles after packets first become
//! available; during a backlog the pipeline stays full and transmissions are
//! back-to-back (the overlap of scheduling and transmission of §4.2).

use crate::sched::tree::Selection;
use rtr_types::packet::TcPacket;
use rtr_types::time::Cycle;

/// A virtual cut-through transmission waiting out the header-processing
/// latency before streaming (§7 extension).
#[derive(Debug)]
pub struct PendingCut {
    /// The packet (header already rewritten for the next hop).
    pub packet: TcPacket,
    /// First cycle the output may emit the start symbol.
    pub start_at: Cycle,
    /// Whether the packet cut through early (within the horizon).
    pub early: bool,
}

/// A time-constrained packet currently being clocked out on a link.
#[derive(Debug)]
pub struct TcTransmit {
    /// The packet (header already rewritten for the next hop).
    pub packet: TcPacket,
    /// Leaf index it was selected from (for diagnostics).
    pub leaf: usize,
    /// Whether the packet was transmitted early (within the horizon).
    pub early: bool,
    /// Symbols already emitted.
    pub sent: usize,
    /// Total symbols (the packet's wire length).
    pub total: usize,
}

/// Cached comparator-tree selection (valid for one tree version and one
/// scheduler slot).
#[derive(Debug, Clone, Copy)]
struct CachedSelection {
    version: u64,
    slot_raw: u32,
    selection: Option<Selection>,
}

/// State of one output port.
#[derive(Debug)]
pub struct OutputPort {
    /// In-flight time-constrained transmission.
    pub tc_tx: Option<TcTransmit>,
    /// A virtual cut-through transmission awaiting its start cycle.
    pub pending_cut: Option<PendingCut>,
    /// Input port currently bound for a wormhole packet (round-robin winner,
    /// held until the packet's tail byte).
    pub be_bound: Option<usize>,
    /// Next input port index to consider in round-robin order.
    pub rr_next: usize,
    /// Best-effort credits: free flit-buffer bytes downstream.
    pub credits: u32,
    /// Reception port: local delivery needs no credits.
    pub infinite_credit: bool,
    /// Horizon register `h` for this port, in slots (Table 3).
    pub horizon: u32,
    cached: Option<CachedSelection>,
    grant_ready_at: Cycle,
    had_candidate: bool,
}

impl OutputPort {
    /// Creates an output port with the given initial credit pool.
    #[must_use]
    pub fn new(credits: u32, infinite_credit: bool) -> Self {
        OutputPort {
            tc_tx: None,
            pending_cut: None,
            be_bound: None,
            rr_next: 0,
            credits,
            infinite_credit,
            horizon: 0,
            cached: None,
            grant_ready_at: 0,
            had_candidate: false,
        }
    }

    /// Whether the link is free for a new packet this cycle.
    #[must_use]
    pub fn link_free(&self) -> bool {
        self.tc_tx.is_none()
    }

    /// Whether a best-effort byte may be sent (credit available).
    #[must_use]
    pub fn has_credit(&self) -> bool {
        self.infinite_credit || self.credits > 0
    }

    /// Spends one best-effort credit.
    pub fn spend_credit(&mut self) {
        if !self.infinite_credit {
            debug_assert!(self.credits > 0, "spending a credit the port does not have");
            self.credits -= 1;
        }
    }

    /// Returns credits freed by the downstream flit buffer.
    pub fn add_credits(&mut self, bytes: u32) {
        if !self.infinite_credit {
            self.credits += bytes;
        }
    }

    /// Looks up (or refreshes) the cached selection for this port, modelling
    /// the pipelined tree: `recompute` is called only when the tree version
    /// or the scheduler slot changed. Returns the selection and whether the
    /// pipeline grant is usable at `now`.
    pub fn selection_with_grant(
        &mut self,
        now: Cycle,
        version: u64,
        slot_raw: u32,
        sched_latency: Cycle,
        recompute: impl FnOnce() -> Option<Selection>,
    ) -> (Option<Selection>, bool) {
        let stale = match self.cached {
            Some(c) => c.version != version || c.slot_raw != slot_raw,
            None => true,
        };
        if stale {
            let selection = recompute();
            if selection.is_some() && !self.had_candidate {
                // Pipeline refill: the tree was empty for this port and now
                // has a candidate; the first grant appears after the
                // pipeline latency.
                self.grant_ready_at = now + sched_latency;
            }
            self.had_candidate = selection.is_some();
            self.cached = Some(CachedSelection { version, slot_raw, selection });
        }
        let selection = self.cached.and_then(|c| c.selection);
        (selection, now >= self.grant_ready_at)
    }

    /// Invalidate the cached selection (used after this port commits a
    /// transmission, which mutates the tree).
    pub fn invalidate_selection(&mut self) {
        self.cached = None;
    }

    /// Whether the pipeline last observed a candidate for this port. When
    /// this flag disagrees with the scheduler's live backlog, the
    /// empty↔non-empty transition — which charges (or resets) the
    /// pipeline-refill latency — has not been recorded yet; the
    /// event-driven fast path settles it over a skipped span with
    /// [`OutputPort::settle_pipeline`] instead of forcing per-cycle ticks.
    #[must_use]
    pub fn had_candidate(&self) -> bool {
        self.had_candidate
    }

    /// Applies, at cycle `at`, the pipeline transition a dense tick would
    /// have recorded on its first selection recompute: an empty→non-empty
    /// flip charges the refill latency from `at`, a non-empty→empty flip
    /// resets the flag so the next candidate charges it anew. Called from
    /// `skip_quiet` when a skipped span starts with the flag stale —
    /// nothing can transmit inside a provably quiet span, so recording the
    /// transition is all the dense recompute would have done. The cache is
    /// dropped because the cached selection predates the transition.
    pub fn settle_pipeline(&mut self, at: Cycle, has_candidate: bool, latency: Cycle) {
        if has_candidate && !self.had_candidate {
            self.grant_ready_at = at + latency;
        }
        self.had_candidate = has_candidate;
        self.cached = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::SlotAddr;
    use rtr_types::clock::SlotClock;
    use rtr_types::key::{LatePolicy, SortKey};

    fn sel(addr: u16) -> Selection {
        let clock = SlotClock::new(8);
        Selection {
            leaf: usize::from(addr),
            addr: SlotAddr(addr),
            key: SortKey::compute(&clock, clock.wrap(0), 5, clock.wrap(0), LatePolicy::Saturate),
        }
    }

    #[test]
    fn credits_gate_best_effort() {
        let mut p = OutputPort::new(2, false);
        assert!(p.has_credit());
        p.spend_credit();
        p.spend_credit();
        assert!(!p.has_credit());
        p.add_credits(1);
        assert!(p.has_credit());
    }

    #[test]
    fn reception_port_never_runs_out_of_credit() {
        let mut p = OutputPort::new(0, true);
        assert!(p.has_credit());
        p.spend_credit();
        assert!(p.has_credit());
    }

    #[test]
    fn first_grant_waits_for_pipeline_latency() {
        let mut p = OutputPort::new(0, false);
        // Tree becomes non-empty at cycle 100.
        let (s, usable) = p.selection_with_grant(100, 1, 0, 4, || Some(sel(0)));
        assert!(s.is_some());
        assert!(!usable, "grant not ready before the pipeline latency");
        let (_, usable) = p.selection_with_grant(103, 1, 0, 4, || unreachable!("cached"));
        assert!(!usable);
        let (_, usable) = p.selection_with_grant(104, 1, 0, 4, || unreachable!("cached"));
        assert!(usable);
    }

    #[test]
    fn backlog_keeps_pipeline_full() {
        let mut p = OutputPort::new(0, false);
        let (_, _) = p.selection_with_grant(100, 1, 0, 4, || Some(sel(0)));
        // Tree mutates (another packet arrives) while a candidate existed:
        // no new latency is charged.
        let (s, usable) = p.selection_with_grant(104, 2, 0, 4, || Some(sel(1)));
        assert!(s.is_some());
        assert!(usable);
    }

    #[test]
    fn cache_invalidates_on_slot_tick() {
        let mut p = OutputPort::new(0, false);
        let (_, _) = p.selection_with_grant(0, 1, 0, 0, || Some(sel(0)));
        let mut called = false;
        let (_, _) = p.selection_with_grant(20, 1, 1, 0, || {
            called = true;
            Some(sel(0))
        });
        assert!(called, "slot tick must force re-selection");
    }

    #[test]
    fn settle_pipeline_matches_dense_recompute() {
        // Dense reference: tree becomes non-empty at cycle 100, first
        // grant usable at 104.
        let mut dense = OutputPort::new(0, false);
        let (_, _) = dense.selection_with_grant(100, 1, 0, 4, || Some(sel(0)));
        // Settled port: the same transition recorded by `settle_pipeline`
        // at the skipped span's first cycle must yield the same grant
        // schedule once ticking resumes.
        let mut settled = OutputPort::new(0, false);
        settled.settle_pipeline(100, true, 4);
        for now in [103, 104] {
            let (_, dense_usable) = dense.selection_with_grant(now, 1, 0, 4, || Some(sel(0)));
            let (_, settled_usable) = settled.selection_with_grant(now, 1, 0, 4, || Some(sel(0)));
            assert_eq!(dense_usable, settled_usable, "grant diverged at cycle {now}");
        }
        // Non-empty → empty resets the flag: the next candidate charges
        // the latency again, exactly as `empty_tree_resets_pipeline`.
        settled.settle_pipeline(200, false, 4);
        let (_, usable) = settled.selection_with_grant(300, 2, 0, 4, || Some(sel(1)));
        assert!(!usable, "refill latency must be charged after an empty span");
    }

    #[test]
    fn empty_tree_resets_pipeline() {
        let mut p = OutputPort::new(0, false);
        let (_, _) = p.selection_with_grant(0, 1, 0, 4, || Some(sel(0)));
        let (_, _) = p.selection_with_grant(10, 2, 0, 4, || None);
        // Next candidate charges the latency again.
        let (_, usable) = p.selection_with_grant(50, 3, 0, 4, || Some(sel(1)));
        assert!(!usable);
        let (_, usable) = p.selection_with_grant(54, 3, 0, 4, || unreachable!());
        assert!(usable);
    }
}
