//! Input- and output-port state machines (paper §3, Figure 2).

pub mod input;
pub mod output;

pub use input::{AbortedRx, BePush, InputPort, RoutedByte};
pub use output::{OutputPort, TcTransmit};
