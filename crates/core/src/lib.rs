//! The real-time router chip model — the primary contribution of
//! *"A Router Architecture for Real-Time Point-to-Point Networks"*
//! (Rexford, Hall, Shin; ISCA 1996).
//!
//! The router mixes two traffic classes with tailored policies (Table 2 of
//! the paper): time-constrained traffic uses store-and-forward switching of
//! fixed 20-byte packets, table-driven multicast routing, a shared output
//! packet memory, and deadline-driven link scheduling; best-effort traffic
//! uses wormhole switching, dimension-ordered routing, per-input flit
//! buffers, and round-robin arbitration, preemptable at byte granularity by
//! on-time time-constrained packets.
//!
//! Module map (mirroring Figure 2 of the paper):
//!
//! * [`conn_table`] — per-connection routing/delay table,
//! * [`control`] — the pin-level control interface (Table 3),
//! * [`memory`] — shared packet memory with the idle-address FIFO,
//! * [`sched`] — the shared comparator tree (Figure 5) and the Table 1
//!   reference discipline it is verified against,
//! * [`ports`] — input/output port state machines,
//! * [`router`] — the orchestrating chip,
//! * [`stats`] — counters the experiments sample.
//!
//! # Example
//!
//! A single router delivering a time-constrained packet to its own
//! processor:
//!
//! ```
//! use rtr_core::control::ControlCommand;
//! use rtr_core::RealTimeRouter;
//! use rtr_types::chip::{Chip, ChipIo};
//! use rtr_types::config::RouterConfig;
//! use rtr_types::ids::{ConnectionId, Port};
//! use rtr_types::packet::{PacketTrace, TcPacket};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut router = RealTimeRouter::new(RouterConfig::default())?;
//! router.apply_control(ControlCommand::SetConnection {
//!     incoming: ConnectionId(1),
//!     outgoing: ConnectionId(1),
//!     delay: 4,
//!     out_mask: Port::Local.mask(),
//! })?;
//!
//! let mut io = ChipIo::new();
//! io.inject_tc.push_back(TcPacket {
//!     conn: ConnectionId(1),
//!     arrival: router.clock().wrap(0),
//!     payload: vec![0; router.config().tc_data_bytes()].into(),
//!     trace: PacketTrace::default(),
//! });
//! for now in 0..200 {
//!     io.begin_cycle();
//!     router.tick(now, &mut io);
//! }
//! assert_eq!(io.delivered_tc.len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod conn_table;
pub mod control;
pub mod memory;
pub mod ports;
pub mod router;
pub mod sched;
pub mod stats;

pub use conn_table::{ConnEntry, ConnectionTable, TableError};
pub use control::{ControlCommand, ControlError, ControlPort, ControlReg};
pub use memory::{PacketMemory, SlotAddr};
pub use router::{RealTimeRouter, RouterTemplate};
pub use sched::{ComparatorTree, Leaf, ReferenceScheduler, Selection};
pub use stats::RouterStats;
