//! The per-router connection table (paper §3.3, §4.1).
//!
//! Establishing a real-time channel writes, at every node of the route, an
//! entry indexed by the *incoming* connection identifier. The entry holds the
//! channel's local delay bound `d`, the bit mask of output ports the packet
//! fans out to (multicast uses several bits, and the same `d` for all of
//! them), and the connection identifier the packet will carry to the next
//! hop.

use std::sync::Arc;

use rtr_types::ids::ConnectionId;
use rtr_types::SlotClock;

/// One connection-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnEntry {
    /// Connection identifier written into the packet header for the next
    /// hop (§4.1: "assigns a new connection identifier for use at the next
    /// node in the packet's route").
    pub outgoing: ConnectionId,
    /// Local delay bound `d` in slots; the packet's local deadline is
    /// `ℓ(m) + d`.
    pub delay: u32,
    /// Bit mask of output ports to forward to (multicast sets several bits).
    pub out_mask: u8,
}

/// The table of per-connection routing and scheduling state.
///
/// The entry storage sits behind an [`Arc`] with copy-on-write updates:
/// cloning a table (as [`crate::router::RouterTemplate`] does for every
/// router of a mesh) shares one allocation until a node actually installs
/// or removes a connection, which keeps mega-mesh construction from being
/// dominated by per-router table copies.
#[derive(Debug, Clone)]
pub struct ConnectionTable {
    entries: Arc<Vec<Option<ConnEntry>>>,
}

/// Why a table update was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableError {
    /// The incoming connection identifier exceeds the table size.
    BadIndex {
        /// The offending identifier.
        conn: ConnectionId,
        /// Table capacity.
        capacity: usize,
    },
    /// The delay bound is not below half the clock range (§4.3's rollover
    /// constraint).
    DelayTooLarge {
        /// The offending delay.
        delay: u32,
        /// The maximum admissible value (half range − 1).
        max: u32,
    },
    /// The port mask has bits beyond the five ports.
    BadMask {
        /// The offending mask.
        mask: u8,
    },
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::BadIndex { conn, capacity } => {
                write!(f, "connection {conn} exceeds table capacity {capacity}")
            }
            TableError::DelayTooLarge { delay, max } => {
                write!(f, "delay bound {delay} exceeds the rollover limit {max}")
            }
            TableError::BadMask { mask } => write!(f, "port mask {mask:#07b} has invalid bits"),
        }
    }
}

impl std::error::Error for TableError {}

impl ConnectionTable {
    /// Creates an empty table with `capacity` entries (256 on the paper's
    /// chip).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ConnectionTable { entries: Arc::new(vec![None; capacity]) }
    }

    /// Table capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Whether no connections are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(Option::is_none)
    }

    /// Looks up the entry for an arriving packet's connection identifier.
    #[must_use]
    pub fn lookup(&self, conn: ConnectionId) -> Option<ConnEntry> {
        self.entries.get(conn.index()).copied().flatten()
    }

    /// Installs (or overwrites) the entry for `incoming`, validating the
    /// §4.3 constraints against the router's clock.
    ///
    /// # Errors
    ///
    /// See [`TableError`].
    pub fn install(
        &mut self,
        incoming: ConnectionId,
        entry: ConnEntry,
        clock: &SlotClock,
    ) -> Result<(), TableError> {
        if incoming.index() >= self.entries.len() {
            return Err(TableError::BadIndex { conn: incoming, capacity: self.entries.len() });
        }
        if entry.delay >= clock.half_range() {
            return Err(TableError::DelayTooLarge {
                delay: entry.delay,
                max: clock.half_range() - 1,
            });
        }
        if entry.out_mask & !0b1_1111 != 0 {
            return Err(TableError::BadMask { mask: entry.out_mask });
        }
        Arc::make_mut(&mut self.entries)[incoming.index()] = Some(entry);
        Ok(())
    }

    /// Removes the entry for `incoming` (connection teardown). Returns the
    /// removed entry, if any.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::BadIndex`] if the identifier exceeds the table.
    pub fn remove(&mut self, incoming: ConnectionId) -> Result<Option<ConnEntry>, TableError> {
        if incoming.index() >= self.entries.len() {
            return Err(TableError::BadIndex { conn: incoming, capacity: self.entries.len() });
        }
        if self.entries[incoming.index()].is_none() {
            // Nothing to remove: leave the shared allocation untouched.
            return Ok(None);
        }
        Ok(Arc::make_mut(&mut self.entries)[incoming.index()].take())
    }

    /// Finds a free incoming identifier, if any (a convenience for protocol
    /// software; the chip itself never allocates identifiers).
    #[must_use]
    pub fn free_id(&self) -> Option<ConnectionId> {
        self.entries.iter().position(Option::is_none).map(|i| ConnectionId(i as u16))
    }

    /// Heap bytes attributable to *this* table. A table still sharing the
    /// template's allocation reports zero — the storage is counted once at
    /// the owner, not once per router.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        if Arc::strong_count(&self.entries) > 1 {
            0
        } else {
            self.entries.capacity() * std::mem::size_of::<Option<ConnEntry>>()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_types::ids::{Direction, Port};

    fn clock() -> SlotClock {
        SlotClock::new(8)
    }

    fn entry(delay: u32, mask: u8) -> ConnEntry {
        ConnEntry { outgoing: ConnectionId(9), delay, out_mask: mask }
    }

    #[test]
    fn install_lookup_remove_round_trip() {
        let mut t = ConnectionTable::new(256);
        assert!(t.is_empty());
        let e = entry(16, Port::Dir(Direction::XPlus).mask());
        t.install(ConnectionId(3), e, &clock()).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(ConnectionId(3)), Some(e));
        assert_eq!(t.lookup(ConnectionId(4)), None);
        assert_eq!(t.remove(ConnectionId(3)).unwrap(), Some(e));
        assert!(t.is_empty());
    }

    #[test]
    fn rollover_constraint_enforced() {
        let mut t = ConnectionTable::new(256);
        // d = 127 is the largest admissible under an 8-bit clock.
        assert!(t.install(ConnectionId(0), entry(127, 1), &clock()).is_ok());
        assert_eq!(
            t.install(ConnectionId(0), entry(128, 1), &clock()),
            Err(TableError::DelayTooLarge { delay: 128, max: 127 })
        );
    }

    #[test]
    fn bad_index_and_mask_rejected() {
        let mut t = ConnectionTable::new(4);
        assert!(matches!(
            t.install(ConnectionId(4), entry(1, 1), &clock()),
            Err(TableError::BadIndex { .. })
        ));
        assert!(matches!(
            t.install(ConnectionId(0), entry(1, 0b10_0000), &clock()),
            Err(TableError::BadMask { mask: 0b10_0000 })
        ));
        assert!(matches!(t.remove(ConnectionId(9)), Err(TableError::BadIndex { .. })));
    }

    #[test]
    fn multicast_masks_accepted() {
        let mut t = ConnectionTable::new(8);
        let mask = Port::Dir(Direction::XPlus).mask()
            | Port::Dir(Direction::YMinus).mask()
            | Port::Local.mask();
        t.install(ConnectionId(1), entry(5, mask), &clock()).unwrap();
        assert_eq!(t.lookup(ConnectionId(1)).unwrap().out_mask, mask);
    }

    #[test]
    fn free_id_scans_in_order() {
        let mut t = ConnectionTable::new(3);
        assert_eq!(t.free_id(), Some(ConnectionId(0)));
        t.install(ConnectionId(0), entry(1, 1), &clock()).unwrap();
        t.install(ConnectionId(2), entry(1, 1), &clock()).unwrap();
        assert_eq!(t.free_id(), Some(ConnectionId(1)));
        t.install(ConnectionId(1), entry(1, 1), &clock()).unwrap();
        assert_eq!(t.free_id(), None);
    }

    #[test]
    fn clones_share_storage_until_written() {
        let mut a = ConnectionTable::new(256);
        a.install(ConnectionId(1), entry(5, 1), &clock()).unwrap();
        let mut b = a.clone();
        assert!(Arc::ptr_eq(&a.entries, &b.entries), "clone must share the allocation");
        b.install(ConnectionId(2), entry(6, 1), &clock()).unwrap();
        assert!(!Arc::ptr_eq(&a.entries, &b.entries), "write must unshare");
        assert_eq!(a.lookup(ConnectionId(2)), None, "writer must not leak into the original");
        assert_eq!(b.lookup(ConnectionId(1)).unwrap().delay, 5);
        // Removing a non-existent entry keeps sharing intact.
        let c = b.clone();
        let mut d = b.clone();
        assert_eq!(d.remove(ConnectionId(100)).unwrap(), None);
        assert!(Arc::ptr_eq(&c.entries, &d.entries), "no-op remove must not unshare");
    }

    #[test]
    fn overwrite_replaces_entry() {
        let mut t = ConnectionTable::new(8);
        t.install(ConnectionId(5), entry(1, 1), &clock()).unwrap();
        t.install(ConnectionId(5), entry(2, 2), &clock()).unwrap();
        assert_eq!(t.lookup(ConnectionId(5)).unwrap().delay, 2);
        assert_eq!(t.len(), 1);
    }
}
