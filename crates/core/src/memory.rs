//! The shared time-constrained packet memory (paper §3.4).
//!
//! A single packet memory, shared by the reception port and the four output
//! links, stores every buffered time-constrained packet. An **idle-address
//! FIFO** hands unused slot addresses to arriving packets; departing packets
//! return their address to the pool. The paper's chip stores packets in a
//! 10-byte-wide single-ported SRAM; here the slot granularity is one whole
//! packet, and the chunked bus timing is modelled by the router's arrival
//! pipeline.

use rtr_types::packet::TcPacket;

/// Address of a packet slot in the shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotAddr(pub u16);

impl SlotAddr {
    /// Flat slot index.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl std::fmt::Display for SlotAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

/// One packet-memory slot: either a buffered packet or a free slot carrying
/// the intrusive idle-FIFO chain (the address of the next free slot).
#[derive(Debug)]
enum Slot {
    /// The slot holds a buffered packet.
    Occupied(TcPacket),
    /// The slot is idle; `next` chains to the next idle address (the FIFO
    /// order), `None` at the tail.
    Free { next: Option<SlotAddr> },
}

/// The shared packet memory plus its idle-address FIFO.
///
/// The idle FIFO is *intrusive*: each free slot stores the address of the
/// next free slot, and the memory keeps only the FIFO's head and tail —
/// the paper's idle-address FIFO collapses to two registers plus the slot
/// array itself, halving the layout's allocations. The slot vector is
/// materialised lazily on the first store: a mega-mesh is mostly idle
/// routers that never buffer a packet, and the slot storage is the
/// router's largest fixed allocation.
#[derive(Debug)]
pub struct PacketMemory {
    capacity: usize,
    slots: Vec<Slot>,
    /// Next idle address to issue (FIFO front); `None` when the memory is
    /// full or not yet materialised.
    free_head: Option<SlotAddr>,
    /// Last idle address (FIFO back), where freed slots are appended.
    free_tail: Option<SlotAddr>,
    live: usize,
    high_water: usize,
}

impl PacketMemory {
    /// Creates a memory with `capacity` packet slots (256 on the paper's
    /// chip), all idle.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        PacketMemory {
            capacity,
            slots: Vec::new(),
            free_head: None,
            free_tail: None,
            live: 0,
            high_water: 0,
        }
    }

    /// Total number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn occupied(&self) -> usize {
        self.live
    }

    /// Highest occupancy ever observed (for the buffer-reservation
    /// experiments).
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Stores an arriving packet, drawing an address from the idle FIFO.
    ///
    /// Returns `None` — and gives the packet back — if the memory is full
    /// (admission control reserves slots precisely so this cannot happen for
    /// admitted traffic).
    pub fn store(&mut self, packet: TcPacket) -> Result<SlotAddr, TcPacket> {
        if self.slots.len() < self.capacity {
            // First store: materialise the slots chained `0 → 1 → …`, the
            // same order the explicit idle FIFO used, preserving the FIFO
            // reissue discipline exactly.
            self.slots = (0..self.capacity)
                .map(|i| Slot::Free {
                    next: (i + 1 < self.capacity).then(|| SlotAddr((i + 1) as u16)),
                })
                .collect();
            self.free_head = Some(SlotAddr(0));
            self.free_tail = Some(SlotAddr((self.capacity - 1) as u16));
        }
        let Some(addr) = self.free_head else {
            return Err(packet);
        };
        let Slot::Free { next } =
            std::mem::replace(&mut self.slots[addr.index()], Slot::Occupied(packet))
        else {
            unreachable!("idle FIFO handed a live slot");
        };
        self.free_head = next;
        if next.is_none() {
            self.free_tail = None;
        }
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        Ok(addr)
    }

    /// Reads the packet at `addr` without freeing it (multicast transmits
    /// the same slot several times).
    #[must_use]
    pub fn peek(&self, addr: SlotAddr) -> Option<&TcPacket> {
        match self.slots.get(addr.index()) {
            Some(Slot::Occupied(p)) => Some(p),
            _ => None,
        }
    }

    /// Frees the slot, returning its packet and pushing the address back
    /// onto the idle FIFO.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already free — that would mean the scheduler
    /// double-freed an address, corrupting the idle pool.
    pub fn free(&mut self, addr: SlotAddr) -> TcPacket {
        let slot = std::mem::replace(&mut self.slots[addr.index()], Slot::Free { next: None });
        let Slot::Occupied(packet) = slot else {
            panic!("freeing an already-idle packet slot");
        };
        match self.free_tail {
            Some(tail) => {
                let Slot::Free { next } = &mut self.slots[tail.index()] else {
                    unreachable!("idle-FIFO tail points at a live slot");
                };
                *next = Some(addr);
            }
            None => self.free_head = Some(addr),
        }
        self.free_tail = Some(addr);
        self.live -= 1;
        packet
    }

    /// Heap bytes currently allocated behind the memory — zero until the
    /// first store materialises the slot array.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rtr_types::ids::ConnectionId;
    use rtr_types::packet::PacketTrace;
    use rtr_types::SlotClock;

    fn packet(tag: u8) -> TcPacket {
        TcPacket {
            conn: ConnectionId(u16::from(tag)),
            arrival: SlotClock::new(8).wrap(0),
            payload: vec![tag; 18].into(),
            trace: PacketTrace::default(),
        }
    }

    #[test]
    fn store_peek_free_round_trip() {
        let mut m = PacketMemory::new(4);
        let a = m.store(packet(1)).unwrap();
        assert_eq!(m.occupied(), 1);
        assert_eq!(m.peek(a).unwrap().payload[0], 1);
        let p = m.free(a);
        assert_eq!(p.payload[0], 1);
        assert_eq!(m.occupied(), 0);
        assert!(m.peek(a).is_none());
    }

    #[test]
    fn unmaterialised_memory_reports_like_an_empty_one() {
        let m = PacketMemory::new(8);
        assert_eq!(m.capacity(), 8);
        assert_eq!(m.occupied(), 0);
        assert_eq!(m.high_water(), 0);
        assert!(m.peek(SlotAddr(0)).is_none());
        // A zero-capacity memory must still reject stores cleanly.
        let mut z = PacketMemory::new(0);
        assert!(z.store(packet(1)).is_err());
        assert_eq!(z.capacity(), 0);
    }

    #[test]
    fn full_memory_rejects_and_returns_packet() {
        let mut m = PacketMemory::new(2);
        m.store(packet(1)).unwrap();
        m.store(packet(2)).unwrap();
        let rejected = m.store(packet(3)).unwrap_err();
        assert_eq!(rejected.payload[0], 3);
        assert_eq!(m.occupied(), 2);
    }

    #[test]
    fn freed_addresses_are_reissued_fifo() {
        let mut m = PacketMemory::new(2);
        let a = m.store(packet(1)).unwrap();
        let b = m.store(packet(2)).unwrap();
        m.free(a);
        m.free(b);
        // FIFO discipline: a then b come back in order.
        assert_eq!(m.store(packet(3)).unwrap(), a);
        assert_eq!(m.store(packet(4)).unwrap(), b);
    }

    #[test]
    #[should_panic(expected = "already-idle")]
    fn double_free_panics() {
        let mut m = PacketMemory::new(1);
        let a = m.store(packet(1)).unwrap();
        m.free(a);
        m.free(a);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut m = PacketMemory::new(8);
        let a = m.store(packet(1)).unwrap();
        let _b = m.store(packet(2)).unwrap();
        m.free(a);
        assert_eq!(m.occupied(), 1);
        assert_eq!(m.high_water(), 2);
    }

    proptest! {
        /// Under any interleaving of stores and frees the idle pool and the
        /// live slots exactly partition the memory, and no address is ever
        /// issued twice concurrently.
        #[test]
        fn conservation_under_random_ops(ops in proptest::collection::vec(any::<bool>(), 1..400)) {
            let mut m = PacketMemory::new(16);
            let mut live: Vec<SlotAddr> = Vec::new();
            for (i, store) in ops.into_iter().enumerate() {
                if store {
                    match m.store(packet(i as u8)) {
                        Ok(addr) => {
                            prop_assert!(!live.contains(&addr), "address issued twice");
                            live.push(addr);
                        }
                        Err(_) => prop_assert_eq!(live.len(), 16),
                    }
                } else if let Some(addr) = live.pop() {
                    m.free(addr);
                }
                prop_assert_eq!(m.occupied(), live.len());
            }
        }
    }
}
