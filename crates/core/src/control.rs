//! The control interface between protocol software and the chip
//! (paper §4.1, Table 3).
//!
//! To minimise pins, the controlling processor programs the router through
//! narrow register writes. A connection update is a sequence of four writes —
//! outgoing connection id, local delay bound `d`, output-port bit mask, and
//! finally the incoming connection id, which commits the entry. A horizon
//! update is two writes — output-port bit mask, then the horizon value, which
//! commits.
//!
//! [`ControlPort`] models the word-level pin protocol;
//! [`ControlCommand`] is the typed convenience layer protocol software
//! actually uses (and what `rtr_channels` drives).

use crate::conn_table::{ConnEntry, ConnectionTable, TableError};
use rtr_types::ids::ConnectionId;
use rtr_types::SlotClock;

/// A typed control-interface command (the rows of Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlCommand {
    /// Install a connection-table entry (the four-write sequence).
    SetConnection {
        /// Incoming connection identifier (table index).
        incoming: ConnectionId,
        /// Identifier to write into forwarded packet headers.
        outgoing: ConnectionId,
        /// Local delay bound `d`, in slots.
        delay: u32,
        /// Output-port bit mask (multicast sets several bits).
        out_mask: u8,
    },
    /// Remove a connection-table entry (teardown; modelled as installing an
    /// empty mask would leak the identifier, so removal is explicit).
    ClearConnection {
        /// Incoming connection identifier to clear.
        incoming: ConnectionId,
    },
    /// Set the horizon parameter `h` for the ports in the mask (the
    /// two-write sequence).
    SetHorizon {
        /// Output-port bit mask selecting which horizon registers to write.
        port_mask: u8,
        /// Horizon value in slots.
        horizon: u32,
    },
}

/// Control-register addresses for the word-level protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlReg {
    /// Outgoing connection identifier (write 1 of 4).
    OutConn,
    /// Local delay bound `d` (write 2 of 4).
    Delay,
    /// Output-port bit mask (write 3 of 4).
    PortMask,
    /// Incoming connection identifier; commits the connection entry
    /// (write 4 of 4).
    InConnCommit,
    /// Horizon port mask (write 1 of 2).
    HorizonMask,
    /// Horizon value; commits the horizon update (write 2 of 2).
    HorizonCommit,
}

/// Errors surfaced by the control interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlError {
    /// The committed connection entry was rejected by the table.
    Table(TableError),
    /// A commit register was written before its staging registers.
    IncompleteSequence {
        /// The commit register that was written.
        reg: ControlReg,
    },
    /// The horizon violates the clock-rollover constraint when combined with
    /// the largest admissible delay (§4.3 requires `h + d` below half the
    /// clock range; the chip conservatively bounds `h` itself).
    HorizonTooLarge {
        /// The offending horizon.
        horizon: u32,
        /// Maximum admissible value.
        max: u32,
    },
}

impl From<TableError> for ControlError {
    fn from(e: TableError) -> Self {
        ControlError::Table(e)
    }
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::Table(e) => write!(f, "table update rejected: {e}"),
            ControlError::IncompleteSequence { reg } => {
                write!(f, "commit register {reg:?} written before its staging registers")
            }
            ControlError::HorizonTooLarge { horizon, max } => {
                write!(f, "horizon {horizon} exceeds the rollover limit {max}")
            }
        }
    }
}

impl std::error::Error for ControlError {}

/// Staged (not yet committed) control writes.
#[derive(Debug, Clone, Copy, Default)]
struct Staging {
    out_conn: Option<u16>,
    delay: Option<u16>,
    port_mask: Option<u16>,
    horizon_mask: Option<u16>,
}

/// The chip's control port: applies typed commands or word-level register
/// writes to the connection table and horizon registers.
#[derive(Debug)]
pub struct ControlPort {
    staging: Staging,
    clock: SlotClock,
}

impl ControlPort {
    /// Creates a control port for a router with the given scheduler clock.
    #[must_use]
    pub fn new(clock: SlotClock) -> Self {
        ControlPort { staging: Staging::default(), clock }
    }

    /// Applies a typed command to the table and horizon registers.
    ///
    /// `horizons` is the per-output-port horizon register file.
    ///
    /// # Errors
    ///
    /// See [`ControlError`].
    pub fn apply(
        &mut self,
        cmd: ControlCommand,
        table: &mut ConnectionTable,
        horizons: &mut [u32],
    ) -> Result<(), ControlError> {
        match cmd {
            ControlCommand::SetConnection { incoming, outgoing, delay, out_mask } => {
                table.install(incoming, ConnEntry { outgoing, delay, out_mask }, &self.clock)?;
                Ok(())
            }
            ControlCommand::ClearConnection { incoming } => {
                table.remove(incoming)?;
                Ok(())
            }
            ControlCommand::SetHorizon { port_mask, horizon } => {
                if horizon >= self.clock.half_range() {
                    return Err(ControlError::HorizonTooLarge {
                        horizon,
                        max: self.clock.half_range() - 1,
                    });
                }
                for (i, h) in horizons.iter_mut().enumerate() {
                    if port_mask & (1 << i) != 0 {
                        *h = horizon;
                    }
                }
                Ok(())
            }
        }
    }

    /// Performs one word-level register write (the pin protocol of Table 3).
    ///
    /// Writes to staging registers return `Ok(None)`; writes to a commit
    /// register assemble and apply the staged command, returning it.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::IncompleteSequence`] if a commit register is
    /// written before all of its staging registers, or the underlying
    /// command's error.
    pub fn write(
        &mut self,
        reg: ControlReg,
        value: u16,
        table: &mut ConnectionTable,
        horizons: &mut [u32],
    ) -> Result<Option<ControlCommand>, ControlError> {
        match reg {
            ControlReg::OutConn => {
                self.staging.out_conn = Some(value);
                Ok(None)
            }
            ControlReg::Delay => {
                self.staging.delay = Some(value);
                Ok(None)
            }
            ControlReg::PortMask => {
                self.staging.port_mask = Some(value);
                Ok(None)
            }
            ControlReg::InConnCommit => {
                let (Some(out_conn), Some(delay), Some(mask)) =
                    (self.staging.out_conn, self.staging.delay, self.staging.port_mask)
                else {
                    return Err(ControlError::IncompleteSequence { reg });
                };
                self.staging.out_conn = None;
                self.staging.delay = None;
                self.staging.port_mask = None;
                let cmd = ControlCommand::SetConnection {
                    incoming: ConnectionId(value),
                    outgoing: ConnectionId(out_conn),
                    delay: u32::from(delay),
                    out_mask: mask as u8,
                };
                self.apply(cmd, table, horizons)?;
                Ok(Some(cmd))
            }
            ControlReg::HorizonMask => {
                self.staging.horizon_mask = Some(value);
                Ok(None)
            }
            ControlReg::HorizonCommit => {
                let Some(mask) = self.staging.horizon_mask else {
                    return Err(ControlError::IncompleteSequence { reg });
                };
                self.staging.horizon_mask = None;
                let cmd =
                    ControlCommand::SetHorizon { port_mask: mask as u8, horizon: u32::from(value) };
                self.apply(cmd, table, horizons)?;
                Ok(Some(cmd))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_types::ids::PORT_COUNT;

    fn setup() -> (ControlPort, ConnectionTable, [u32; PORT_COUNT]) {
        (ControlPort::new(SlotClock::new(8)), ConnectionTable::new(16), [0; PORT_COUNT])
    }

    #[test]
    fn four_write_sequence_installs_connection() {
        let (mut port, mut table, mut horizons) = setup();
        assert_eq!(port.write(ControlReg::OutConn, 9, &mut table, &mut horizons).unwrap(), None);
        assert_eq!(port.write(ControlReg::Delay, 16, &mut table, &mut horizons).unwrap(), None);
        assert_eq!(
            port.write(ControlReg::PortMask, 0b10, &mut table, &mut horizons).unwrap(),
            None
        );
        let committed = port.write(ControlReg::InConnCommit, 3, &mut table, &mut horizons).unwrap();
        assert!(matches!(committed, Some(ControlCommand::SetConnection { .. })));
        let e = table.lookup(ConnectionId(3)).unwrap();
        assert_eq!(e.outgoing, ConnectionId(9));
        assert_eq!(e.delay, 16);
        assert_eq!(e.out_mask, 0b10);
    }

    #[test]
    fn two_write_sequence_sets_horizon_registers() {
        let (mut port, mut table, mut horizons) = setup();
        port.write(ControlReg::HorizonMask, 0b0_0110, &mut table, &mut horizons).unwrap();
        port.write(ControlReg::HorizonCommit, 4, &mut table, &mut horizons).unwrap();
        assert_eq!(horizons, [0, 4, 4, 0, 0]);
    }

    #[test]
    fn premature_commit_is_rejected() {
        let (mut port, mut table, mut horizons) = setup();
        assert!(matches!(
            port.write(ControlReg::InConnCommit, 0, &mut table, &mut horizons),
            Err(ControlError::IncompleteSequence { reg: ControlReg::InConnCommit })
        ));
        assert!(matches!(
            port.write(ControlReg::HorizonCommit, 0, &mut table, &mut horizons),
            Err(ControlError::IncompleteSequence { reg: ControlReg::HorizonCommit })
        ));
    }

    #[test]
    fn staging_is_consumed_by_commit() {
        let (mut port, mut table, mut horizons) = setup();
        port.write(ControlReg::OutConn, 1, &mut table, &mut horizons).unwrap();
        port.write(ControlReg::Delay, 2, &mut table, &mut horizons).unwrap();
        port.write(ControlReg::PortMask, 1, &mut table, &mut horizons).unwrap();
        port.write(ControlReg::InConnCommit, 0, &mut table, &mut horizons).unwrap();
        // A second commit without restaging must fail.
        assert!(port.write(ControlReg::InConnCommit, 1, &mut table, &mut horizons).is_err());
    }

    #[test]
    fn connection_and_horizon_sequences_interleave_safely() {
        // The two write sequences use disjoint staging registers, so the
        // controlling processor may interleave them (e.g. under interrupt).
        let (mut port, mut table, mut horizons) = setup();
        port.write(ControlReg::OutConn, 4, &mut table, &mut horizons).unwrap();
        port.write(ControlReg::HorizonMask, 0b1, &mut table, &mut horizons).unwrap();
        port.write(ControlReg::Delay, 7, &mut table, &mut horizons).unwrap();
        port.write(ControlReg::HorizonCommit, 9, &mut table, &mut horizons).unwrap();
        port.write(ControlReg::PortMask, 0b100, &mut table, &mut horizons).unwrap();
        port.write(ControlReg::InConnCommit, 2, &mut table, &mut horizons).unwrap();
        assert_eq!(horizons[0], 9);
        let e = table.lookup(ConnectionId(2)).unwrap();
        assert_eq!((e.outgoing, e.delay, e.out_mask), (ConnectionId(4), 7, 0b100));
    }

    #[test]
    fn restaging_overwrites_previous_values() {
        let (mut port, mut table, mut horizons) = setup();
        port.write(ControlReg::OutConn, 1, &mut table, &mut horizons).unwrap();
        port.write(ControlReg::OutConn, 9, &mut table, &mut horizons).unwrap(); // overwrite
        port.write(ControlReg::Delay, 3, &mut table, &mut horizons).unwrap();
        port.write(ControlReg::PortMask, 0b10, &mut table, &mut horizons).unwrap();
        port.write(ControlReg::InConnCommit, 0, &mut table, &mut horizons).unwrap();
        assert_eq!(table.lookup(ConnectionId(0)).unwrap().outgoing, ConnectionId(9));
    }

    #[test]
    fn typed_horizon_respects_rollover_limit() {
        let (mut port, mut table, mut horizons) = setup();
        let err = port
            .apply(
                ControlCommand::SetHorizon { port_mask: 1, horizon: 128 },
                &mut table,
                &mut horizons,
            )
            .unwrap_err();
        assert!(matches!(err, ControlError::HorizonTooLarge { horizon: 128, max: 127 }));
    }

    #[test]
    fn clear_connection_removes_entry() {
        let (mut port, mut table, mut horizons) = setup();
        port.apply(
            ControlCommand::SetConnection {
                incoming: ConnectionId(2),
                outgoing: ConnectionId(5),
                delay: 1,
                out_mask: 1,
            },
            &mut table,
            &mut horizons,
        )
        .unwrap();
        port.apply(
            ControlCommand::ClearConnection { incoming: ConnectionId(2) },
            &mut table,
            &mut horizons,
        )
        .unwrap();
        assert!(table.lookup(ConnectionId(2)).is_none());
    }

    #[test]
    fn table_errors_propagate_through_control() {
        let (mut port, mut table, mut horizons) = setup();
        let err = port
            .apply(
                ControlCommand::SetConnection {
                    incoming: ConnectionId(2),
                    outgoing: ConnectionId(5),
                    delay: 500,
                    out_mask: 1,
                },
                &mut table,
                &mut horizons,
            )
            .unwrap_err();
        assert!(matches!(err, ControlError::Table(TableError::DelayTooLarge { .. })));
    }
}
