//! The real-time router chip (paper Figure 2).
//!
//! Orchestrates the datapaths of both traffic classes:
//!
//! * **Time-constrained** packets are reassembled at the input ports,
//!   looked up in the connection table (which assigns the next hop's
//!   connection identifier and the local deadline `ℓ(m) + d`), stored in the
//!   shared packet memory via the idle-address FIFO, and scheduled on the
//!   output ports by the shared comparator tree.
//! * **Best-effort** bytes cut through: the input port makes the
//!   dimension-ordered decision from the header offsets and the output port
//!   forwards bytes whenever no on-time time-constrained packet claims the
//!   link and a downstream credit is available.
//!
//! Per-cycle link arbitration (§3.2): an in-flight time-constrained packet
//! finishes its bytes; otherwise an on-time selection starts; otherwise a
//! best-effort byte goes; otherwise an early selection within the horizon
//! goes; otherwise the link idles.

use std::cell::Cell;
use std::sync::Arc;

use rtr_types::chip::{Chip, ChipIo, WakeStats};
use rtr_types::clock::{LogicalTime, SlotClock};
use rtr_types::config::RouterConfig;
use rtr_types::error::ConfigError;
use rtr_types::flit::{BeByte, LinkSymbol};
use rtr_types::ids::{Port, PORT_COUNT};
use rtr_types::packet::{BePacket, PacketTrace, TcPacket};
use rtr_types::time::Cycle;

use crate::conn_table::ConnectionTable;
use crate::control::{ControlCommand, ControlError, ControlPort, ControlReg};
use crate::memory::PacketMemory;
use crate::ports::input::InputPort;
use crate::ports::output::{OutputPort, TcTransmit};
use crate::sched::dispatch::Scheduler;
use crate::sched::leaf::Leaf;
use crate::stats::RouterStats;

#[cfg(feature = "trace")]
use rtr_types::trace::{DropReason, QueueClass, SharedTraceSink, TraceEvent, TraceRecord};

/// Emits a trace event through the attached sink. With the `trace` feature
/// disabled the invocation expands to nothing, so the event-building
/// expressions are never evaluated and the traced datapath costs zero.
#[cfg(feature = "trace")]
macro_rules! trace_event {
    ($self:ident, $now:expr, $event:expr) => {
        if let Some(sink) = &$self.trace_sink {
            sink.lock().unwrap().record(&TraceRecord {
                cycle: $now,
                node: $self.trace_node,
                event: $event,
            });
        }
    };
}
#[cfg(not(feature = "trace"))]
macro_rules! trace_event {
    ($self:ident, $now:expr, $event:expr) => {};
}

/// Interior-mutable wake-precision counters (see [`WakeStats`]): the
/// accounting happens inside [`Chip::next_event`], which takes `&self`.
#[derive(Debug, Default)]
struct WakeTelemetry {
    polls: Cell<u64>,
    short_polls: Cell<u64>,
    sync_guard_only: Cell<u64>,
    sync_guard_foregone: Cell<u64>,
}

impl WakeTelemetry {
    fn snapshot(&self) -> WakeStats {
        WakeStats {
            polls: self.polls.get(),
            short_polls: self.short_polls.get(),
            sync_guard_only: self.sync_guard_only.get(),
            sync_guard_foregone: self.sync_guard_foregone.get(),
        }
    }
}

/// The single-chip real-time router.
#[derive(Debug)]
pub struct RealTimeRouter {
    /// The architectural parameters, shared (read-only) with the template
    /// and every sibling router of the mesh — stamping out a router costs
    /// one `Arc` bump instead of a config clone.
    config: Arc<RouterConfig>,
    clock: SlotClock,
    /// Bounded clock skew in slots, added to the local scheduler clock
    /// (§4.1: routers share a notion of time within bounded skew).
    skew_slots: u64,
    table: ConnectionTable,
    control: ControlPort,
    /// Incoming connection ids cleared by a `ClearConnection` whose entry
    /// existed — the teardown tombstones. A packet arriving for one is an
    /// accounted teardown abort (`tc_aborted_teardown`), not a `no_conn`
    /// routing error; re-installing the id lifts the tombstone, so a
    /// recycled identifier starts clean.
    torn_down: std::collections::HashSet<u16>,
    memory: PacketMemory,
    sched: Scheduler,
    inputs: [InputPort; PORT_COUNT],
    outputs: [OutputPort; PORT_COUNT],
    /// Remaining continuation symbols of the time-constrained injection in
    /// progress.
    tc_inject_remaining: Option<usize>,
    /// Best-effort injection in progress: position and trace;
    /// the staged wire bytes live in [`Self::be_inject_buf`].
    be_inject: Option<(usize, PacketTrace)>,
    /// Staging buffer for the best-effort injection port, reused across
    /// packets so injection never allocates.
    be_inject_buf: Vec<u8>,
    /// Reception-port best-effort reassembly buffer.
    rx_be_buf: Vec<u8>,
    rx_be_trace: Option<PacketTrace>,
    stats: RouterStats,
    /// Wake-precision telemetry for [`Chip::next_event`] answers. `Cell`s
    /// because polling takes `&self`; kept out of [`RouterStats`] so the
    /// stepped-vs-leaping statistics comparisons (which poll at different
    /// rates) stay byte-identical.
    wake: WakeTelemetry,
    /// Event sink for cycle-accurate tracing (None = tracing off).
    #[cfg(feature = "trace")]
    trace_sink: Option<SharedTraceSink>,
    /// Node identity stamped on emitted trace records.
    #[cfg(feature = "trace")]
    trace_node: rtr_types::ids::NodeId,
}

/// A validated construction template for stamping out identical routers.
///
/// Building a mesh means constructing thousands of routers from one
/// [`RouterConfig`]. The template validates the configuration once and
/// pre-builds the shared read-only state — the (copy-on-write) connection
/// table and the slot clock — so [`RouterTemplate::build`] allocates only
/// what is genuinely per-router. Combined with the lazily materialised
/// packet memory and comparator-tree cache, this is what makes 128×128
/// builds cheap.
#[derive(Debug, Clone)]
pub struct RouterTemplate {
    config: Arc<RouterConfig>,
    clock: SlotClock,
    table: ConnectionTable,
}

impl RouterTemplate {
    /// Validates `config` and prepares the shared pieces.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error, if any.
    pub fn new(config: RouterConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let clock = SlotClock::new(config.clock_bits);
        let table = ConnectionTable::new(config.connections);
        Ok(RouterTemplate { clock, table, config: Arc::new(config) })
    }

    /// The validated configuration.
    #[must_use]
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Stamps out one router. The connection table is shared with the
    /// template (and every sibling router) until the router installs its
    /// first connection.
    #[must_use]
    pub fn build(&self) -> RealTimeRouter {
        let config = Arc::clone(&self.config);
        let clock = self.clock;
        let t = &config.timing;
        let be_latency =
            t.sync_cycles + t.header_cycles + config.chunk_bytes as u64 + t.bus_grant_cycles;
        let store_chunks = config.slot_bytes.div_ceil(config.memory_chunk_bytes) as u64;
        let tc_store_latency = t.sync_cycles + t.header_cycles + store_chunks * t.bus_grant_cycles;
        let flit = config.be_path_bytes();
        let inputs = std::array::from_fn(|_| InputPort::new(be_latency, tc_store_latency, flit));
        // Network outputs start with a symmetric credit assumption (the
        // simulator overrides from the real neighbour); the reception port
        // consumes locally and needs no credits.
        let outputs = std::array::from_fn(|i| OutputPort::new(flit as u32, i == 0));
        RealTimeRouter {
            clock,
            skew_slots: 0,
            table: self.table.clone(),
            control: ControlPort::new(clock),
            torn_down: std::collections::HashSet::new(),
            memory: PacketMemory::new(config.packet_slots),
            sched: Scheduler::new(config.scheduler, config.packet_slots, clock, config.late_policy),
            inputs,
            outputs,
            tc_inject_remaining: None,
            be_inject: None,
            be_inject_buf: Vec::new(),
            rx_be_buf: Vec::new(),
            rx_be_trace: None,
            stats: RouterStats::default(),
            wake: WakeTelemetry::default(),
            #[cfg(feature = "trace")]
            trace_sink: None,
            #[cfg(feature = "trace")]
            trace_node: rtr_types::ids::NodeId(0),
            config,
        }
    }
}

impl RealTimeRouter {
    /// Builds a router from its architectural parameters. Meshes should
    /// build a [`RouterTemplate`] once and call [`RouterTemplate::build`]
    /// per node instead of re-validating per router.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error, if any.
    pub fn new(config: RouterConfig) -> Result<Self, ConfigError> {
        Ok(RouterTemplate::new(config)?.build())
    }

    /// The router's architectural parameters.
    #[must_use]
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// The scheduler clock.
    #[must_use]
    pub fn clock(&self) -> SlotClock {
        self.clock
    }

    /// Statistics counters.
    #[must_use]
    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }

    /// Mutable statistics counters, for fault injection: tests (and the
    /// flight-recorder demo) corrupt a counter to force a conservation
    /// violation. Not for datapath use — the router maintains its own
    /// ledger.
    #[doc(hidden)]
    pub fn stats_mut(&mut self) -> &mut RouterStats {
        &mut self.stats
    }

    /// Checks the packet-conservation invariants (see
    /// [`RouterStats::check_conservation`]) against the live memory
    /// occupancy. Call between cycles.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_conservation(&self) -> Result<(), String> {
        self.stats.check_conservation(self.memory.occupied())
    }

    /// Attaches a trace sink and sets the node identity stamped on emitted
    /// records. Only available with the `trace` feature.
    #[cfg(feature = "trace")]
    pub fn set_trace_sink(&mut self, node: rtr_types::ids::NodeId, sink: SharedTraceSink) {
        self.trace_node = node;
        self.trace_sink = Some(sink);
    }

    /// Detaches the trace sink, returning it. Only available with the
    /// `trace` feature.
    #[cfg(feature = "trace")]
    pub fn take_trace_sink(&mut self) -> Option<SharedTraceSink> {
        self.trace_sink.take()
    }

    /// Current packet-memory occupancy (buffered time-constrained packets).
    #[must_use]
    pub fn memory_occupied(&self) -> usize {
        self.memory.occupied()
    }

    /// Peak packet-memory occupancy observed so far.
    #[must_use]
    pub fn memory_high_water(&self) -> usize {
        self.memory.high_water()
    }

    /// Sets this router's bounded clock skew in slots (must stay well below
    /// half the clock range for the §4.3 windows to hold).
    pub fn set_clock_skew(&mut self, slots: u64) {
        self.skew_slots = slots;
    }

    /// Overrides the initial best-effort credit pool of an output port (the
    /// simulator calls this with the downstream neighbour's flit-buffer
    /// size).
    pub fn set_output_credits(&mut self, port: Port, bytes: u32) {
        let out = &mut self.outputs[port.index()];
        if !out.infinite_credit {
            out.credits = bytes;
        }
    }

    /// The horizon register of an output port.
    #[must_use]
    pub fn horizon(&self, port: Port) -> u32 {
        self.outputs[port.index()].horizon
    }

    /// Applies a typed control command (Table 3) — what protocol software
    /// calls during channel establishment.
    ///
    /// # Errors
    ///
    /// See [`ControlError`].
    pub fn apply_control(&mut self, cmd: ControlCommand) -> Result<(), ControlError> {
        // A clear of a live entry tombstones the id (packets still in
        // flight become accounted teardown aborts); checked before the
        // apply, which consumes the entry.
        let cleared_live = match cmd {
            ControlCommand::ClearConnection { incoming } => self.table.lookup(incoming).is_some(),
            _ => false,
        };
        let mut horizons: [u32; PORT_COUNT] = std::array::from_fn(|i| self.outputs[i].horizon);
        self.control.apply(cmd, &mut self.table, &mut horizons)?;
        for (out, h) in self.outputs.iter_mut().zip(horizons) {
            out.horizon = h;
        }
        self.note_control(&cmd, cleared_live);
        Ok(())
    }

    /// Maintains the teardown tombstones after a successful control
    /// command: clearing a live entry marks the id, re-installing it (a
    /// recycled identifier) lifts the mark.
    fn note_control(&mut self, cmd: &ControlCommand, cleared_live: bool) {
        match *cmd {
            ControlCommand::SetConnection { incoming, .. } => {
                self.torn_down.remove(&incoming.0);
            }
            ControlCommand::ClearConnection { incoming } if cleared_live => {
                self.torn_down.insert(incoming.0);
            }
            _ => {}
        }
    }

    /// Performs one word-level control-register write (the Table 3 pin
    /// protocol).
    ///
    /// # Errors
    ///
    /// See [`ControlError`].
    pub fn control_write(
        &mut self,
        reg: ControlReg,
        value: u16,
    ) -> Result<Option<ControlCommand>, ControlError> {
        let mut horizons: [u32; PORT_COUNT] = std::array::from_fn(|i| self.outputs[i].horizon);
        let r = self.control.write(reg, value, &mut self.table, &mut horizons)?;
        for (out, h) in self.outputs.iter_mut().zip(horizons) {
            out.horizon = h;
        }
        if let Some(cmd) = &r {
            // The word-level protocol has no clear register, so a
            // completed command can only install (lifting a tombstone).
            self.note_control(cmd, false);
        }
        Ok(r)
    }

    /// Read access to the connection table (diagnostics, tests).
    #[must_use]
    pub fn connection_table(&self) -> &ConnectionTable {
        &self.table
    }

    /// The local scheduler time at `now`, including this router's skew.
    #[must_use]
    pub fn scheduler_time(&self, now: Cycle) -> LogicalTime {
        self.clock.wrap(now / self.config.slot_bytes as u64 + self.skew_slots)
    }

    fn ingest_network_symbols(&mut self, now: Cycle, io: &mut ChipIo) {
        for idx in 1..PORT_COUNT {
            if let Some(symbol) = io.rx[idx].take() {
                match symbol {
                    LinkSymbol::TcStart(packet) => self.ingest_tc_start(now, idx, *packet),
                    LinkSymbol::TcCont { .. } => {
                        if !self.inputs[idx].push_tc_cont(now) {
                            // Orphan of a packet whose head a fault destroyed.
                            self.stats.tc_orphan_symbols += 1;
                        }
                    }
                    LinkSymbol::Be(byte) => {
                        let outcome = self.inputs[idx].push_be(now, byte);
                        if outcome.dropped > 0 {
                            self.stats.be_dropped_faulty += u64::from(outcome.dropped);
                            // Shed bytes consumed upstream credits; refund
                            // them so the sender's pool stays balanced.
                            io.credit_out[idx] += u16::from(outcome.dropped);
                        }
                        if outcome.truncated {
                            self.stats.be_truncated += 1;
                        }
                    }
                }
            }
        }
    }

    /// Handles the first symbol of an arriving time-constrained packet:
    /// either sets up a virtual cut-through (§7 extension, when enabled and
    /// the packet would win the output immediately) or begins the normal
    /// store-and-forward reception.
    fn ingest_tc_start(&mut self, now: Cycle, in_idx: usize, packet: TcPacket) {
        if self.config.tc_cut_through {
            if let Some(entry) = self.table.lookup(packet.conn) {
                if entry.out_mask.count_ones() == 1 {
                    let out_port = rtr_types::ids::ports_in_mask(entry.out_mask)
                        .next()
                        .expect("mask has one bit");
                    let out_idx = out_port.index();
                    let t = self.scheduler_time(now);
                    let l = packet.arrival;
                    // Cut through when the output is free, no buffered
                    // packet has a smaller sorting key (the paper's
                    // condition), and the packet is transmittable now:
                    // on-time, or early within the horizon with no
                    // best-effort flit awaiting service (§3.2 ordering).
                    let on_time = !self.clock.is_early(l, t);
                    let transmittable = on_time
                        || (self.clock.until(l, t) <= self.outputs[out_idx].horizon
                            && !self.be_waiting(out_idx, now));
                    if transmittable
                        && self.outputs[out_idx].tc_tx.is_none()
                        && self.outputs[out_idx].pending_cut.is_none()
                    {
                        let key = rtr_types::key::SortKey::compute(
                            &self.clock,
                            l,
                            entry.delay,
                            t,
                            self.config.late_policy,
                        );
                        let wins = self
                            .sched
                            .select(out_port, t)
                            .is_none_or(|buffered| key < buffered.key);
                        if wins {
                            let t_config = &self.config.timing;
                            let cut_latency = t_config.sync_cycles
                                + t_config.header_cycles
                                + t_config.bus_grant_cycles;
                            let wire_len = packet.wire_len();
                            trace_event!(
                                self,
                                now,
                                TraceEvent::TcArrive {
                                    conn: packet.conn,
                                    port: in_idx as u8,
                                    src: packet.trace.source,
                                    seq: packet.trace.sequence,
                                }
                            );
                            trace_event!(
                                self,
                                now,
                                TraceEvent::TcCutThrough {
                                    conn: entry.outgoing,
                                    port: out_idx as u8,
                                    src: packet.trace.source,
                                    seq: packet.trace.sequence,
                                }
                            );
                            let rewritten = TcPacket {
                                conn: entry.outgoing,
                                arrival: self.clock.add(l, entry.delay),
                                ..packet
                            };
                            self.outputs[out_idx].pending_cut =
                                Some(crate::ports::output::PendingCut {
                                    packet: rewritten,
                                    start_at: now + cut_latency,
                                    early: !on_time,
                                });
                            if self.inputs[in_idx].push_tc_start_cut(wire_len) {
                                self.stats.tc_truncated += 1;
                            }
                            self.stats.tc_arrived += 1;
                            self.stats.tc_cut_through += 1;
                            if !on_time {
                                self.stats.tc_early_transmitted[out_idx] += 1;
                            }
                            return;
                        }
                    }
                }
            }
        }
        if self.inputs[in_idx].push_tc_start(now, packet) {
            self.stats.tc_truncated += 1;
        }
    }

    fn run_injectors(&mut self, now: Cycle, io: &mut ChipIo) {
        // Time-constrained injection port: one byte per cycle.
        if let Some(remaining) = self.tc_inject_remaining {
            let fed = self.inputs[0].push_tc_cont(now);
            debug_assert!(fed, "injection continuations always follow their start");
            self.tc_inject_remaining = if remaining == 1 { None } else { Some(remaining - 1) };
        } else if let Some(packet) = io.inject_tc.pop_front() {
            if packet.payload.len() != self.config.tc_data_bytes() {
                self.stats.tc_malformed += 1;
                trace_event!(
                    self,
                    now,
                    TraceEvent::TcDrop {
                        conn: packet.conn,
                        reason: DropReason::Malformed,
                        src: packet.trace.source,
                        seq: packet.trace.sequence,
                    }
                );
            } else {
                self.stats.tc_injected += 1;
                trace_event!(
                    self,
                    now,
                    TraceEvent::TcInject {
                        conn: packet.conn,
                        src: packet.trace.source,
                        seq: packet.trace.sequence,
                    }
                );
                let remaining = packet.wire_len() - 1;
                self.ingest_tc_start(now, 0, packet);
                self.tc_inject_remaining = (remaining > 0).then_some(remaining);
            }
        }

        // Best-effort injection port: one byte per cycle, gated by the local
        // flit buffer.
        if self.be_inject.is_none() {
            if let Some(packet) = io.inject_be.pop_front() {
                packet.to_wire_into(&mut self.be_inject_buf);
                self.be_inject = Some((0, packet.trace));
            }
        }
        if let Some((pos, trace)) = &mut self.be_inject {
            if self.inputs[0].be_free_space() > 0 {
                let wire = &self.be_inject_buf;
                let head = *pos == 0;
                let tail = *pos == wire.len() - 1;
                let byte = BeByte { byte: wire[*pos], head, tail, trace: head.then_some(*trace) };
                let outcome = self.inputs[0].push_be(now, byte);
                debug_assert_eq!(outcome, Default::default(), "injection is free-space gated");
                *pos += 1;
                if *pos == wire.len() {
                    self.be_inject = None;
                }
            }
        }
    }

    fn process_tc_arrivals(&mut self, now: Cycle) {
        for idx in 0..PORT_COUNT {
            let Some(packet) = self.inputs[idx].take_ready_tc(now) else {
                continue;
            };
            self.stats.tc_arrived += 1;
            trace_event!(
                self,
                now,
                TraceEvent::TcArrive {
                    conn: packet.conn,
                    port: idx as u8,
                    src: packet.trace.source,
                    seq: packet.trace.sequence,
                }
            );
            let Some(entry) = self.table.lookup(packet.conn) else {
                if self.torn_down.contains(&packet.conn.0) {
                    // The connection was torn down while this packet was
                    // in flight: an accounted abort, not a routing error.
                    self.stats.tc_aborted_teardown += 1;
                    trace_event!(
                        self,
                        now,
                        TraceEvent::TcDrop {
                            conn: packet.conn,
                            reason: DropReason::TornDown,
                            src: packet.trace.source,
                            seq: packet.trace.sequence,
                        }
                    );
                } else {
                    self.stats.tc_dropped_no_conn += 1;
                    trace_event!(
                        self,
                        now,
                        TraceEvent::TcDrop {
                            conn: packet.conn,
                            reason: DropReason::NoConnection,
                            src: packet.trace.source,
                            seq: packet.trace.sequence,
                        }
                    );
                }
                continue;
            };
            let l = packet.arrival;
            let rewritten = TcPacket {
                conn: entry.outgoing,
                arrival: self.clock.add(l, entry.delay),
                ..packet
            };
            let addr = match self.memory.store(rewritten) {
                Ok(addr) => addr,
                Err(_dropped) => {
                    self.stats.tc_dropped_no_buffer += 1;
                    trace_event!(
                        self,
                        now,
                        TraceEvent::TcDrop {
                            conn: _dropped.conn,
                            reason: DropReason::NoBuffer,
                            src: _dropped.trace.source,
                            seq: _dropped.trace.sequence,
                        }
                    );
                    continue;
                }
            };
            trace_event!(
                self,
                now,
                TraceEvent::SlotAlloc {
                    conn: entry.outgoing,
                    slot: addr.0,
                    src: packet.trace.source,
                    seq: packet.trace.sequence,
                }
            );
            let leaf = Leaf { l, delay: entry.delay, port_mask: entry.out_mask, addr };
            if self.sched.insert(leaf).is_err() {
                // Unreachable: leaves and memory slots are allocated 1:1.
                self.memory.free(addr);
                self.stats.tc_dropped_no_buffer += 1;
                trace_event!(self, now, TraceEvent::SlotFree { slot: addr.0 });
                trace_event!(
                    self,
                    now,
                    TraceEvent::TcDrop {
                        conn: entry.outgoing,
                        reason: DropReason::NoBuffer,
                        src: packet.trace.source,
                        seq: packet.trace.sequence,
                    }
                );
            } else {
                self.stats.tc_buffered += 1;
            }
        }
    }

    /// Whether any input holds a best-effort byte that could go out on
    /// `out_idx` this cycle (read-only; used by the cut-through and early
    /// checks).
    fn be_waiting(&self, out_idx: usize, now: Cycle) -> bool {
        let port = Port::from_index(out_idx);
        self.outputs[out_idx].has_credit()
            && self.inputs.iter().any(|input| input.be_front_for(port, now).is_some())
    }

    /// Picks the input port whose head-of-line best-effort byte this output
    /// should carry, honouring an existing wormhole binding and otherwise
    /// rotating round-robin over the input links (§3.2).
    fn be_pick(&mut self, out_idx: usize, now: Cycle) -> Option<usize> {
        let port = Port::from_index(out_idx);
        if let Some(bound) = self.outputs[out_idx].be_bound {
            // A packet is mid-flight on this output: only its bytes may go.
            return self.inputs[bound].be_front_for(port, now).map(|_| bound);
        }
        let start = self.outputs[out_idx].rr_next;
        for k in 0..PORT_COUNT {
            let i = (start + k) % PORT_COUNT;
            if let Some(front) = self.inputs[i].be_front_for(port, now) {
                debug_assert!(front.byte.head, "unbound output must start at a head byte");
                self.outputs[out_idx].rr_next = (i + 1) % PORT_COUNT;
                return Some(i);
            }
        }
        None
    }

    fn deliver_be_byte(&mut self, now: Cycle, byte: BeByte, io: &mut ChipIo) {
        if byte.head {
            self.rx_be_buf.clear();
            self.rx_be_trace = byte.trace;
        }
        self.rx_be_buf.push(byte.byte);
        if byte.tail {
            match BePacket::from_wire(&self.rx_be_buf) {
                Ok(mut packet) => {
                    packet.trace = self.rx_be_trace.take().unwrap_or_default();
                    self.stats.be_delivered += 1;
                    trace_event!(
                        self,
                        now,
                        TraceEvent::BeDeliver {
                            src: packet.trace.source,
                            seq: packet.trace.sequence,
                        }
                    );
                    io.delivered_be.push((now, packet));
                }
                Err(_) => self.stats.be_malformed += 1,
            }
            self.rx_be_buf.clear();
        }
    }

    fn drive_output(&mut self, now: Cycle, out_idx: usize, io: &mut ChipIo) {
        let port = Port::from_index(out_idx);
        let t = self.scheduler_time(now);

        // 1. An in-flight time-constrained packet finishes its bytes.
        if self.outputs[out_idx].tc_tx.is_some() {
            self.continue_tc(now, out_idx, io);
            return;
        }

        // 1b. A virtual cut-through owns this output: start streaming once
        //     the header-processing latency elapses (until then best-effort
        //     bytes may still fill the gap below; buffered starts hold off).
        if let Some(pending) = &self.outputs[out_idx].pending_cut {
            if pending.start_at <= now {
                let pending = self.outputs[out_idx].pending_cut.take().expect("checked");
                self.start_cut_tc(now, out_idx, pending.packet, pending.early, io);
                return;
            }
            if self.outputs[out_idx].has_credit() {
                if let Some(in_idx) = self.be_pick(out_idx, now) {
                    self.send_be_byte(now, out_idx, in_idx, io);
                    return;
                }
            }
            self.stats.idle_cycles[out_idx] += 1;
            return;
        }

        // 2. Consult the (pipelined) comparator tree.
        let sched = &self.sched;
        let sched_latency = self.config.effective_sched_latency();
        let (selection, usable) = self.outputs[out_idx].selection_with_grant(
            now,
            sched.version(),
            t.raw(),
            sched_latency,
            || sched.select(port, t),
        );
        let granted = usable.then_some(selection).flatten();

        // On-time packets preempt best-effort traffic at a byte boundary.
        if let Some(sel) = granted {
            if sel.key.is_on_time() {
                self.start_tc(now, out_idx, sel, false, io);
                return;
            }
        }

        // 3. Best-effort flits consume excess bandwidth, ahead of early
        //    time-constrained packets.
        if self.outputs[out_idx].has_credit() {
            if let Some(in_idx) = self.be_pick(out_idx, now) {
                self.send_be_byte(now, out_idx, in_idx, io);
                return;
            }
        }

        // 4. Early time-constrained packets within the horizon fill
        //    otherwise-idle cycles.
        if let Some(sel) = granted {
            if sel.key.is_early() && sel.key.time_field() <= self.outputs[out_idx].horizon {
                self.start_tc(now, out_idx, sel, true, io);
                return;
            }
        }

        self.stats.idle_cycles[out_idx] += 1;
    }

    /// Emits one best-effort byte from `in_idx` on output `out_idx`,
    /// maintaining wormhole binding, credits, and reassembly.
    fn send_be_byte(&mut self, now: Cycle, out_idx: usize, in_idx: usize, io: &mut ChipIo) {
        let routed = self.inputs[in_idx].pop_be();
        if routed.byte.head {
            trace_event!(
                self,
                now,
                TraceEvent::BeSelect { port: out_idx as u8, input: in_idx as u8 }
            );
        }
        self.outputs[out_idx].be_bound = (!routed.byte.tail).then_some(in_idx);
        self.outputs[out_idx].spend_credit();
        if in_idx != 0 {
            io.credit_out[in_idx] += 1;
        }
        self.stats.be_bytes[out_idx] += 1;
        if out_idx == 0 {
            self.deliver_be_byte(now, routed.byte, io);
        } else {
            io.tx[out_idx] = Some(LinkSymbol::Be(routed.byte));
        }
    }

    /// Starts streaming a virtual cut-through packet on an output port.
    fn start_cut_tc(
        &mut self,
        now: Cycle,
        out_idx: usize,
        packet: TcPacket,
        early: bool,
        io: &mut ChipIo,
    ) {
        self.stats.tc_transmitted[out_idx] += 1;
        self.stats.tc_bytes[out_idx] += 1;
        *self.stats.tc_bytes_by_conn.entry((out_idx, packet.conn)).or_insert(0) +=
            packet.wire_len() as u64;
        trace_event!(
            self,
            now,
            TraceEvent::TcTransmit {
                conn: packet.conn,
                port: out_idx as u8,
                early,
                slack: i64::from(self.clock.signed_diff(packet.arrival, self.scheduler_time(now))),
                src: packet.trace.source,
                seq: packet.trace.sequence,
            }
        );
        let total = packet.wire_len();
        if out_idx != 0 {
            io.tx[out_idx] = Some(LinkSymbol::TcStart(Box::new(packet.clone())));
        }
        let tx = TcTransmit { packet, leaf: usize::MAX, early, sent: 1, total };
        if tx.sent == tx.total {
            self.finish_tc(now, out_idx, tx, io);
        } else {
            self.outputs[out_idx].tc_tx = Some(tx);
        }
    }

    fn start_tc(
        &mut self,
        now: Cycle,
        out_idx: usize,
        sel: crate::sched::tree::Selection,
        early: bool,
        io: &mut ChipIo,
    ) {
        let port = Port::from_index(out_idx);
        let packet = self
            .memory
            .peek(sel.addr)
            .expect("selected leaf points at an idle memory slot")
            .clone();
        trace_event!(
            self,
            now,
            TraceEvent::SchedSelect {
                conn: packet.conn,
                port: out_idx as u8,
                class: if early { QueueClass::EarlyWithinHorizon } else { QueueClass::OnTimeEdf },
                src: packet.trace.source,
                seq: packet.trace.sequence,
            }
        );
        if let Some(freed) = self.sched.commit(sel.leaf, port) {
            self.memory.free(freed);
            self.stats.tc_retired += 1;
            trace_event!(self, now, TraceEvent::SlotFree { slot: freed.0 });
        }
        self.stats.tc_transmitted[out_idx] += 1;
        if early {
            self.stats.tc_early_transmitted[out_idx] += 1;
        }
        if sel.key.is_aliased() {
            self.stats.aliased_keys += 1;
        }
        self.stats.tc_bytes[out_idx] += 1;
        *self.stats.tc_bytes_by_conn.entry((out_idx, packet.conn)).or_insert(0) +=
            packet.wire_len() as u64;
        trace_event!(
            self,
            now,
            TraceEvent::TcTransmit {
                conn: packet.conn,
                port: out_idx as u8,
                early,
                slack: i64::from(self.clock.signed_diff(packet.arrival, self.scheduler_time(now))),
                src: packet.trace.source,
                seq: packet.trace.sequence,
            }
        );

        let total = packet.wire_len();
        if out_idx != 0 {
            io.tx[out_idx] = Some(LinkSymbol::TcStart(Box::new(packet.clone())));
        }
        let tx = TcTransmit { packet, leaf: sel.leaf, early, sent: 1, total };
        if tx.sent == tx.total {
            self.finish_tc(now, out_idx, tx, io);
        } else {
            self.outputs[out_idx].tc_tx = Some(tx);
        }
    }

    fn continue_tc(&mut self, now: Cycle, out_idx: usize, io: &mut ChipIo) {
        let mut tx = self.outputs[out_idx].tc_tx.take().expect("no TC transmission in flight");
        if out_idx != 0 {
            io.tx[out_idx] = Some(LinkSymbol::TcCont { index: tx.sent as u8 });
        }
        tx.sent += 1;
        self.stats.tc_bytes[out_idx] += 1;
        if tx.sent == tx.total {
            self.finish_tc(now, out_idx, tx, io);
        } else {
            self.outputs[out_idx].tc_tx = Some(tx);
        }
    }

    fn finish_tc(&mut self, now: Cycle, out_idx: usize, tx: TcTransmit, io: &mut ChipIo) {
        if out_idx == 0 {
            self.stats.tc_delivered += 1;
            trace_event!(
                self,
                now,
                TraceEvent::TcDeliver {
                    conn: tx.packet.conn,
                    slack: i64::from(
                        self.clock.signed_diff(tx.packet.arrival, self.scheduler_time(now))
                    ),
                    src: tx.packet.trace.source,
                    seq: tx.packet.trace.sequence,
                }
            );
            io.delivered_tc.push((now, tx.packet));
        }
    }
}

impl Chip for RealTimeRouter {
    fn tick(&mut self, now: Cycle, io: &mut ChipIo) {
        // Credits freed downstream arrive first so this cycle can use them.
        for idx in 0..PORT_COUNT {
            let bytes = io.credit_in[idx];
            if bytes > 0 {
                self.outputs[idx].add_credits(u32::from(bytes));
            }
        }
        self.ingest_network_symbols(now, io);
        self.run_injectors(now, io);
        self.process_tc_arrivals(now);
        for out_idx in 0..PORT_COUNT {
            self.drive_output(now, out_idx, io);
        }
    }

    fn flit_buffer_bytes(&self) -> usize {
        self.config.be_path_bytes()
    }

    fn set_output_credits(&mut self, port: Port, bytes: u32) {
        RealTimeRouter::set_output_credits(self, port, bytes);
    }

    fn gauges(&self) -> Option<rtr_types::chip::ChipGauges> {
        let mut g = rtr_types::chip::ChipGauges {
            memory_occupied: self.memory.occupied(),
            memory_capacity: self.memory.capacity(),
            sched_backlog: self.sched.len(),
            ..Default::default()
        };
        for i in 0..PORT_COUNT {
            g.queue_depth[i] = self.sched.backlog_for(Port::from_index(i));
            g.horizon[i] = self.outputs[i].horizon;
            g.be_buffered[i] = self.inputs[i].be_occupancy();
        }
        Some(g)
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.wake.polls.set(self.wake.polls.get() + 1);
        let short = || {
            self.wake.short_polls.set(self.wake.short_polls.get() + 1);
            Some(now + 1)
        };

        // Anything that makes progress every cycle forces a tick next cycle.
        if self.tc_inject_remaining.is_some() || self.be_inject.is_some() {
            return short();
        }
        if self.inputs.iter().any(InputPort::tc_rx_active) {
            return short();
        }
        if self.outputs.iter().any(|out| out.tc_tx.is_some()) {
            return short();
        }

        let mut earliest: Option<Cycle> = None;
        let mut merge = |at: Cycle| {
            let at = at.max(now + 1);
            earliest = Some(earliest.map_or(at, |e: Cycle| e.min(at)));
        };

        // The empty↔non-empty transition of a port's candidate set is what
        // charges (or resets) the comparator tree's pipeline-refill
        // latency. It used to force per-cycle ticks until every port
        // recomputed; now `skip_quiet` settles the transition over a
        // skipped span via `OutputPort::settle_pipeline`, so the guard no
        // longer blocks the leap — it only keeps its telemetry: how often
        // it was the sole blocker under the old rule, and how many cycles
        // the settle path reclaims.
        let mut sync_guard = false;
        for (idx, out) in self.outputs.iter().enumerate() {
            if out.had_candidate() != (self.sched.backlog_for(Port::from_index(idx)) > 0) {
                sync_guard = true;
            }
            if let Some(pending) = &out.pending_cut {
                merge(pending.start_at);
            }
        }

        for input in &self.inputs {
            if let Some(ready) = input.next_tc_ready() {
                merge(ready);
            }
            if let Some(head) = input.be_head() {
                if head.ready_at > now {
                    merge(head.ready_at);
                } else if self.outputs[head.out.index()].has_credit() {
                    // Ready and sendable: it goes out next cycle. A ready
                    // byte with no downstream credit is frozen until an
                    // external credit arrives, so it is not an event source.
                    return short();
                }
            }
        }

        // Buffered time-constrained packets wake the chip when they become
        // transmittable: on-time (or late) packets resolve through the EDF
        // grant pipeline by stepping; early packets sleep until they enter a
        // subscribed output's horizon window.
        let t = self.scheduler_time(now);
        let slot_bytes = self.config.slot_bytes as u64;
        for (_, leaf) in self.sched.iter() {
            if !self.clock.is_early(leaf.l, t) {
                return short();
            }
            for port in rtr_types::ids::ports_in_mask(leaf.port_mask) {
                let horizon = self.outputs[port.index()].horizon;
                let delta =
                    u64::from(self.clock.until(leaf.l, t)).saturating_sub(u64::from(horizon));
                if delta == 0 {
                    return short();
                }
                // The scheduler slot advances exactly when `now` crosses a
                // multiple of `slot_bytes`, so the packet enters the horizon
                // at the cycle beginning slot `now / slot_bytes + delta`.
                merge((now / slot_bytes + delta) * slot_bytes);
            }
        }

        if sync_guard {
            // The guard would have been the only blocker under the old
            // rule: every other wake source allowed `earliest` (or
            // silence). Count the leap the settle path reclaims.
            self.wake.sync_guard_only.set(self.wake.sync_guard_only.get() + 1);
            let reclaimed = earliest.map_or(0, |e| e - (now + 1));
            self.wake.sync_guard_foregone.set(self.wake.sync_guard_foregone.get() + reclaimed);
        }

        if earliest == Some(now + 1) {
            return short();
        }
        earliest
    }

    fn skip_quiet(&mut self, from: Cycle, to: Cycle) {
        // Every quiescent cycle ends with all five outputs taking an idle
        // path in `drive_output`, so account the skipped span as idle time.
        let skipped = to - from;
        for idle in &mut self.stats.idle_cycles {
            *idle += skipped;
        }
        // Settle stale grant pipelines: a port whose `had_candidate` flag
        // disagrees with the scheduler's live backlog records, at the
        // span's first cycle, the transition the first dense tick of the
        // span would have recorded on its selection recompute. Nothing can
        // transmit inside a provably quiet span (on-time backlog forces
        // per-cycle ticks via `next_event`'s short answers), so the
        // transition is all that recompute would have done.
        let latency = self.config.effective_sched_latency();
        for (idx, out) in self.outputs.iter_mut().enumerate() {
            let has_candidate = self.sched.backlog_for(Port::from_index(idx)) > 0;
            if out.had_candidate() != has_candidate {
                out.settle_pipeline(from, has_candidate, latency);
            }
        }
    }

    fn wake_stats(&self) -> Option<WakeStats> {
        Some(self.wake.snapshot())
    }

    fn counters(&self, emit: &mut dyn FnMut(&'static str, u64)) {
        self.stats.emit_counters(emit);
        emit("sched.key_computations", self.sched.key_computations());
    }

    fn heap_bytes_estimate(&self) -> usize {
        // The dominant allocations: packet memory, scheduler leaves, the
        // connection table (zero while still sharing the template's
        // storage — it is counted once at the owner), and the per-port
        // queues and staging buffers. The shared `Arc<RouterConfig>` is
        // likewise charged to the template, not to every router.
        self.memory.heap_bytes()
            + self.sched.heap_bytes()
            + self.table.heap_bytes()
            + self.inputs.iter().map(InputPort::heap_bytes).sum::<usize>()
            + self.be_inject_buf.capacity()
            + self.rx_be_buf.capacity()
            + self.torn_down.capacity() * std::mem::size_of::<u16>()
    }

    fn check_conservation(&self) -> Result<(), String> {
        RealTimeRouter::check_conservation(self)
    }

    fn abort_partial_rx(&mut self) -> [u8; PORT_COUNT] {
        let mut dropped = [0u8; PORT_COUNT];
        for (idx, input) in self.inputs.iter_mut().enumerate() {
            let aborted = input.abort_partial();
            if aborted.tc_aborted {
                self.stats.tc_truncated += 1;
            }
            if aborted.be_truncated {
                self.stats.be_truncated += 1;
            }
            self.stats.be_dropped_faulty += u64::from(aborted.be_dropped);
            dropped[idx] = aborted.be_dropped;
        }
        // The injection machinery feeds port 0 from inside the node; its
        // mid-flight packet died with the port's reassembly registers, and
        // there is no upstream link to refund.
        self.tc_inject_remaining = None;
        self.be_inject = None;
        dropped[0] = 0;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_types::ids::{ConnectionId, Direction};

    fn router() -> RealTimeRouter {
        RealTimeRouter::new(RouterConfig::default()).unwrap()
    }

    fn io() -> ChipIo {
        ChipIo::new()
    }

    fn run(router: &mut RealTimeRouter, io: &mut ChipIo, from: &mut Cycle, cycles: u64) {
        for _ in 0..cycles {
            io.begin_cycle();
            router.tick(*from, io);
            // Drop any network tx/credits (single-router tests).
            io.tx = Default::default();
            io.credit_out = [0; PORT_COUNT];
            *from += 1;
        }
    }

    fn tc_packet(conn: u16, arrival: u64, router: &RealTimeRouter) -> TcPacket {
        TcPacket {
            conn: ConnectionId(conn),
            arrival: router.clock().wrap(arrival),
            payload: vec![0x5A; router.config().tc_data_bytes()].into(),
            trace: PacketTrace::default(),
        }
    }

    #[test]
    fn local_loopback_tc_delivery() {
        let mut r = router();
        // Connection 1: deliver locally with d = 4 slots.
        r.apply_control(ControlCommand::SetConnection {
            incoming: ConnectionId(1),
            outgoing: ConnectionId(1),
            delay: 4,
            out_mask: Port::Local.mask(),
        })
        .unwrap();
        let mut io = io();
        io.inject_tc.push_back(tc_packet(1, 0, &r));
        let mut now = 0;
        run(&mut r, &mut io, &mut now, 200);
        assert_eq!(io.delivered_tc.len(), 1, "packet must be delivered locally");
        assert_eq!(r.stats().tc_injected, 1);
        assert_eq!(r.stats().tc_delivered, 1);
        assert_eq!(r.stats().tc_dropped(), 0);
        // Injection takes 20 cycles, storage ~6, scheduling ~4, reception 20.
        let (cycle, _) = io.delivered_tc[0];
        assert!((40..=80).contains(&cycle), "delivery at {cycle}");
    }

    #[test]
    fn torn_down_connection_aborts_arrivals_into_its_own_column() {
        let mut r = router();
        r.apply_control(ControlCommand::SetConnection {
            incoming: ConnectionId(3),
            outgoing: ConnectionId(3),
            delay: 4,
            out_mask: Port::Local.mask(),
        })
        .unwrap();
        r.apply_control(ControlCommand::ClearConnection { incoming: ConnectionId(3) }).unwrap();
        let mut io = io();
        io.inject_tc.push_back(tc_packet(3, 0, &r));
        let mut now = 0;
        run(&mut r, &mut io, &mut now, 100);
        assert_eq!(r.stats().tc_aborted_teardown, 1, "abort lands in the teardown column");
        assert_eq!(r.stats().tc_dropped_no_conn, 0, "not a routing error");
        r.check_conservation().unwrap();
        // Re-installing the id lifts the tombstone: the recycled
        // identifier's traffic routes normally.
        r.apply_control(ControlCommand::SetConnection {
            incoming: ConnectionId(3),
            outgoing: ConnectionId(3),
            delay: 4,
            out_mask: Port::Local.mask(),
        })
        .unwrap();
        io.inject_tc.push_back(tc_packet(3, now / 20 + 1, &r));
        run(&mut r, &mut io, &mut now, 200);
        assert_eq!(r.stats().tc_delivered, 1, "recycled id delivers");
        assert_eq!(r.stats().tc_aborted_teardown, 1, "no new aborts");
        r.check_conservation().unwrap();
    }

    #[test]
    fn clearing_an_absent_connection_leaves_no_tombstone() {
        let mut r = router();
        // Clearing an id that never existed is a no-op teardown: a later
        // arrival for it is a genuine routing error, not an abort.
        let _ = r.apply_control(ControlCommand::ClearConnection { incoming: ConnectionId(7) });
        let mut io = io();
        io.inject_tc.push_back(tc_packet(7, 0, &r));
        let mut now = 0;
        run(&mut r, &mut io, &mut now, 100);
        assert_eq!(r.stats().tc_aborted_teardown, 0);
        assert_eq!(r.stats().tc_dropped_no_conn, 1);
    }

    #[test]
    fn unknown_connection_dropped_and_counted() {
        let mut r = router();
        let mut io = io();
        io.inject_tc.push_back(tc_packet(7, 0, &r));
        let mut now = 0;
        run(&mut r, &mut io, &mut now, 100);
        assert_eq!(r.stats().tc_dropped_no_conn, 1);
        assert!(io.delivered_tc.is_empty());
    }

    #[test]
    fn malformed_injection_rejected() {
        let mut r = router();
        let mut io = io();
        io.inject_tc.push_back(TcPacket {
            conn: ConnectionId(0),
            arrival: r.clock().wrap(0),
            payload: vec![1, 2, 3].into(), // wrong size
            trace: PacketTrace::default(),
        });
        let mut now = 0;
        run(&mut r, &mut io, &mut now, 50);
        assert_eq!(r.stats().tc_malformed, 1);
        assert_eq!(r.stats().tc_injected, 0);
    }

    #[test]
    fn tc_packet_forwarded_on_network_port_with_rewritten_header() {
        let mut r = router();
        r.apply_control(ControlCommand::SetConnection {
            incoming: ConnectionId(2),
            outgoing: ConnectionId(9),
            delay: 8,
            out_mask: Port::Dir(Direction::XPlus).mask(),
        })
        .unwrap();
        let mut io = io();
        io.inject_tc.push_back(tc_packet(2, 3, &r));
        let mut first_tx: Option<(Cycle, TcPacket)> = None;
        for now in 0..300u64 {
            io.begin_cycle();
            r.tick(now, &mut io);
            if first_tx.is_none() {
                if let Some(LinkSymbol::TcStart(p)) =
                    io.tx[Port::Dir(Direction::XPlus).index()].take()
                {
                    first_tx = Some((now, *p));
                }
            }
            io.tx = Default::default();
        }
        let (_, p) = first_tx.expect("packet must leave on +x");
        assert_eq!(p.conn, ConnectionId(9), "next-hop connection id");
        // New timestamp = ℓ + d = 3 + 8 = 11.
        assert_eq!(p.arrival.raw(), 11);
        assert_eq!(r.stats().tc_transmitted[Port::Dir(Direction::XPlus).index()], 1);
    }

    #[test]
    fn multicast_fans_out_to_all_masked_ports() {
        let mut r = router();
        let mask = Port::Dir(Direction::XPlus).mask()
            | Port::Dir(Direction::YMinus).mask()
            | Port::Local.mask();
        r.apply_control(ControlCommand::SetConnection {
            incoming: ConnectionId(1),
            outgoing: ConnectionId(1),
            delay: 4,
            out_mask: mask,
        })
        .unwrap();
        let mut io = io();
        io.inject_tc.push_back(tc_packet(1, 0, &r));
        let mut starts = [0u32; PORT_COUNT];
        for now in 0..400u64 {
            io.begin_cycle();
            r.tick(now, &mut io);
            for (idx, tx) in io.tx.iter().enumerate().skip(1) {
                if matches!(tx, Some(LinkSymbol::TcStart(_))) {
                    starts[idx] += 1;
                }
            }
            io.tx = Default::default();
        }
        assert_eq!(starts[Port::Dir(Direction::XPlus).index()], 1);
        assert_eq!(starts[Port::Dir(Direction::YMinus).index()], 1);
        assert_eq!(io.delivered_tc.len(), 1, "local copy delivered");
        assert_eq!(r.memory_occupied(), 0, "slot freed after the last port");
    }

    #[test]
    fn be_local_loopback_delivery() {
        let mut r = router();
        let mut io = io();
        let payload: Vec<u8> = (0..32).collect();
        io.inject_be.push_back(BePacket::new(
            0,
            0,
            payload.clone(),
            PacketTrace { sequence: 42, ..PacketTrace::default() },
        ));
        let mut now = 0;
        run(&mut r, &mut io, &mut now, 300);
        assert_eq!(io.delivered_be.len(), 1);
        let (_, p) = &io.delivered_be[0];
        assert_eq!(p.payload, payload);
        assert_eq!(p.trace.sequence, 42, "trace survives the trip");
        assert_eq!(p.header.x_off, 0);
        assert_eq!(p.header.y_off, 0);
    }

    #[test]
    fn be_forwarded_on_network_port_with_stepped_offsets() {
        let mut r = router();
        let mut io = io();
        io.inject_be.push_back(BePacket::new(2, -1, vec![0xCC; 8], PacketTrace::default()));
        let mut bytes = Vec::new();
        let out = Port::Dir(Direction::XPlus).index();
        for now in 0..200u64 {
            io.begin_cycle();
            io.credit_in[out] = 1; // emulate downstream flit-buffer drain
            r.tick(now, &mut io);
            if let Some(LinkSymbol::Be(b)) = io.tx[out].take() {
                bytes.push(b);
            }
            io.tx = Default::default();
        }
        assert_eq!(bytes.len(), 12, "4 header + 8 payload bytes");
        assert!(bytes[0].head);
        assert!(bytes[11].tail);
        assert_eq!(bytes[0].byte, 1, "x offset stepped 2 → 1");
        assert_eq!(bytes[1].byte, 0xFF, "y offset unchanged (-1)");
    }

    #[test]
    fn be_transmission_stalls_without_credits() {
        let mut r = router();
        r.set_output_credits(Port::Dir(Direction::XPlus), 3);
        let mut io = io();
        io.inject_be.push_back(BePacket::new(1, 0, vec![0xEE; 20], PacketTrace::default()));
        let mut sent = 0;
        for now in 0..500u64 {
            io.begin_cycle();
            r.tick(now, &mut io);
            if matches!(io.tx[Port::Dir(Direction::XPlus).index()], Some(LinkSymbol::Be(_))) {
                sent += 1;
            }
            io.tx = Default::default();
        }
        assert_eq!(sent, 3, "exactly the credit pool leaves");
    }

    #[test]
    fn on_time_tc_preempts_best_effort_stream() {
        let mut r = router();
        let out = Port::Dir(Direction::XPlus);
        r.apply_control(ControlCommand::SetConnection {
            incoming: ConnectionId(1),
            outgoing: ConnectionId(1),
            delay: 2,
            out_mask: out.mask(),
        })
        .unwrap();
        let mut io = io();
        // A long best-effort packet starts flowing; credits replenished by
        // the harness to keep it moving.
        io.inject_be.push_back(BePacket::new(3, 0, vec![0xAB; 200], PacketTrace::default()));
        let mut symbols = Vec::new();
        for now in 0..600u64 {
            io.begin_cycle();
            io.credit_in[out.index()] = 1; // emulate downstream consumption
            if now == 100 {
                io.inject_tc.push_back(TcPacket {
                    conn: ConnectionId(1),
                    arrival: r.clock().wrap(now / 20),
                    payload: vec![0; r.config().tc_data_bytes()].into(),
                    trace: PacketTrace::default(),
                });
            }
            r.tick(now, &mut io);
            if let Some(s) = io.tx[out.index()].take() {
                symbols.push((now, s));
            }
            io.tx = Default::default();
        }
        // Find the TC packet's symbols; they must be contiguous (20 cycles)
        // and must appear while BE bytes still remain (preemption).
        let tc_start = symbols
            .iter()
            .position(|(_, s)| matches!(s, LinkSymbol::TcStart(_)))
            .expect("TC packet must be transmitted");
        let be_after_tc = symbols[tc_start..].iter().any(|(_, s)| matches!(s, LinkSymbol::Be(_)));
        assert!(be_after_tc, "best-effort stream resumes after preemption");
        for k in 1..20 {
            assert!(
                matches!(symbols[tc_start + k].1, LinkSymbol::TcCont { .. }),
                "TC symbols must be contiguous at byte level"
            );
        }
    }

    #[test]
    fn early_packet_waits_for_logical_arrival_with_zero_horizon() {
        let mut r = router();
        let out = Port::Dir(Direction::XPlus);
        r.apply_control(ControlCommand::SetConnection {
            incoming: ConnectionId(1),
            outgoing: ConnectionId(1),
            delay: 4,
            out_mask: out.mask(),
        })
        .unwrap();
        let mut io = io();
        // Logical arrival at slot 20 — far in the future.
        io.inject_tc.push_back(tc_packet(1, 20, &r));
        let mut start_cycle = None;
        for now in 0..1000u64 {
            io.begin_cycle();
            r.tick(now, &mut io);
            if start_cycle.is_none() && matches!(io.tx[out.index()], Some(LinkSymbol::TcStart(_))) {
                start_cycle = Some(now);
            }
            io.tx = Default::default();
        }
        let start = start_cycle.expect("packet eventually transmits");
        assert!(start >= 20 * 20, "must not transmit before slot 20 (cycle 400), got {start}");
    }

    #[test]
    fn early_packet_transmits_within_horizon() {
        let mut r = router();
        let out = Port::Dir(Direction::XPlus);
        r.apply_control(ControlCommand::SetConnection {
            incoming: ConnectionId(1),
            outgoing: ConnectionId(1),
            delay: 4,
            out_mask: out.mask(),
        })
        .unwrap();
        r.apply_control(ControlCommand::SetHorizon { port_mask: out.mask(), horizon: 100 })
            .unwrap();
        let mut io = io();
        io.inject_tc.push_back(tc_packet(1, 20, &r));
        let mut start_cycle = None;
        for now in 0..1000u64 {
            io.begin_cycle();
            r.tick(now, &mut io);
            if start_cycle.is_none() && matches!(io.tx[out.index()], Some(LinkSymbol::TcStart(_))) {
                start_cycle = Some(now);
            }
            io.tx = Default::default();
        }
        let start = start_cycle.expect("packet transmits early");
        assert!(start < 20 * 20, "horizon permits early transmission, got {start}");
        assert_eq!(r.stats().tc_early_transmitted[out.index()], 1);
    }

    #[test]
    fn memory_exhaustion_drops_and_counts() {
        let mut r =
            RealTimeRouter::new(RouterConfig { packet_slots: 2, ..RouterConfig::default() })
                .unwrap();
        let out = Port::Dir(Direction::XPlus);
        r.apply_control(ControlCommand::SetConnection {
            incoming: ConnectionId(1),
            outgoing: ConnectionId(1),
            delay: 100,
            out_mask: out.mask(),
        })
        .unwrap();
        let mut io = io();
        // Far-future arrivals so nothing transmits (h = 0): memory fills.
        for k in 0..4 {
            io.inject_tc.push_back(tc_packet(1, 120 + k, &r));
        }
        let mut now = 0;
        run(&mut r, &mut io, &mut now, 400);
        assert_eq!(r.stats().tc_dropped_no_buffer, 2);
        assert_eq!(r.memory_occupied(), 2);
    }

    #[test]
    fn cut_through_beats_store_and_forward_latency() {
        let out = Port::Dir(Direction::XPlus);
        let measure = |cut: bool| -> Cycle {
            let mut r = RealTimeRouter::new(RouterConfig {
                tc_cut_through: cut,
                ..RouterConfig::default()
            })
            .unwrap();
            r.apply_control(ControlCommand::SetConnection {
                incoming: ConnectionId(1),
                outgoing: ConnectionId(1),
                delay: 8,
                out_mask: out.mask(),
            })
            .unwrap();
            let mut io = io();
            io.inject_tc.push_back(tc_packet(1, 0, &r));
            for now in 0..600u64 {
                io.begin_cycle();
                r.tick(now, &mut io);
                if matches!(io.tx[out.index()], Some(LinkSymbol::TcStart(_))) {
                    if cut {
                        assert_eq!(r.stats().tc_cut_through, 1);
                        assert_eq!(r.memory_occupied(), 0, "cut packets never buffer");
                    }
                    return now;
                }
                io.tx = Default::default();
            }
            panic!("packet never transmitted");
        };
        let buffered = measure(false);
        let cut = measure(true);
        assert!(cut + 10 <= buffered, "cut-through must skip the store wait: {cut} vs {buffered}");
    }

    #[test]
    fn cut_through_streams_contiguously_with_correct_header() {
        let out = Port::Dir(Direction::XPlus);
        let mut r =
            RealTimeRouter::new(RouterConfig { tc_cut_through: true, ..RouterConfig::default() })
                .unwrap();
        r.apply_control(ControlCommand::SetConnection {
            incoming: ConnectionId(2),
            outgoing: ConnectionId(9),
            delay: 6,
            out_mask: out.mask(),
        })
        .unwrap();
        let mut io = io();
        io.inject_tc.push_back(tc_packet(2, 0, &r));
        let mut symbols = Vec::new();
        for now in 0..300u64 {
            io.begin_cycle();
            r.tick(now, &mut io);
            if let Some(s) = io.tx[out.index()].take() {
                symbols.push((now, s));
            }
            io.tx = Default::default();
        }
        assert_eq!(symbols.len(), 20);
        let (start, first) = &symbols[0];
        let LinkSymbol::TcStart(p) = first else { panic!("start first") };
        assert_eq!(p.conn, ConnectionId(9), "header rewritten on the fly");
        assert_eq!(p.arrival.raw(), 6, "timestamp = ℓ + d");
        for (k, (cycle, _)) in symbols.iter().enumerate() {
            assert_eq!(*cycle, start + k as u64, "symbols are contiguous");
        }
    }

    #[test]
    fn cut_through_defers_to_buffered_packet_with_smaller_key() {
        let out = Port::Dir(Direction::XPlus);
        let mut r =
            RealTimeRouter::new(RouterConfig { tc_cut_through: true, ..RouterConfig::default() })
                .unwrap();
        for conn in [1u16, 2] {
            r.apply_control(ControlCommand::SetConnection {
                incoming: ConnectionId(conn),
                outgoing: ConnectionId(conn),
                delay: if conn == 1 { 4 } else { 100 },
                out_mask: out.mask(),
            })
            .unwrap();
        }
        let mut io = io();
        // Tight packet first: it buffers (nothing to cut past at arrival it
        // does cut... it also cuts through). Then the loose packet arrives
        // while the tight one is pending/transmitting — it must buffer.
        io.inject_tc.push_back(tc_packet(1, 0, &r));
        io.inject_tc.push_back(tc_packet(2, 0, &r));
        let mut now = 0;
        run(&mut r, &mut io, &mut now, 800);
        let s = r.stats();
        assert_eq!(s.tc_transmitted[out.index()], 2);
        assert_eq!(
            s.tc_cut_through, 1,
            "only the first packet may cut; the second buffers behind it"
        );
        assert_eq!(s.tc_dropped(), 0);
    }

    #[test]
    fn multicast_never_cuts_through() {
        let mask = Port::Dir(Direction::XPlus).mask() | Port::Local.mask();
        let mut r =
            RealTimeRouter::new(RouterConfig { tc_cut_through: true, ..RouterConfig::default() })
                .unwrap();
        r.apply_control(ControlCommand::SetConnection {
            incoming: ConnectionId(1),
            outgoing: ConnectionId(1),
            delay: 4,
            out_mask: mask,
        })
        .unwrap();
        let mut io = io();
        io.inject_tc.push_back(tc_packet(1, 0, &r));
        let mut now = 0;
        run(&mut r, &mut io, &mut now, 600);
        assert_eq!(r.stats().tc_cut_through, 0);
        assert_eq!(io.delivered_tc.len(), 1, "still delivered via buffering");
    }

    #[test]
    fn early_packets_never_cut_through() {
        let out = Port::Dir(Direction::XPlus);
        let mut r =
            RealTimeRouter::new(RouterConfig { tc_cut_through: true, ..RouterConfig::default() })
                .unwrap();
        r.apply_control(ControlCommand::SetConnection {
            incoming: ConnectionId(1),
            outgoing: ConnectionId(1),
            delay: 4,
            out_mask: out.mask(),
        })
        .unwrap();
        let mut io = io();
        io.inject_tc.push_back(tc_packet(1, 50, &r)); // ℓ far in the future
        let mut now = 0;
        run(&mut r, &mut io, &mut now, 100);
        assert_eq!(r.stats().tc_cut_through, 0);
        assert_eq!(r.memory_occupied(), 1, "early packet waits in the memory");
    }

    #[test]
    fn early_packet_within_horizon_cuts_through() {
        let out = Port::Dir(Direction::XPlus);
        let mut r =
            RealTimeRouter::new(RouterConfig { tc_cut_through: true, ..RouterConfig::default() })
                .unwrap();
        r.apply_control(ControlCommand::SetConnection {
            incoming: ConnectionId(1),
            outgoing: ConnectionId(1),
            delay: 4,
            out_mask: out.mask(),
        })
        .unwrap();
        r.apply_control(ControlCommand::SetHorizon { port_mask: out.mask(), horizon: 100 })
            .unwrap();
        let mut io = io();
        io.inject_tc.push_back(tc_packet(1, 50, &r));
        let mut now = 0;
        run(&mut r, &mut io, &mut now, 100);
        assert_eq!(r.stats().tc_cut_through, 1);
        assert_eq!(r.stats().tc_early_transmitted[out.index()], 1);
        assert_eq!(r.memory_occupied(), 0);
    }

    #[test]
    fn all_output_ports_transmit_concurrently_from_one_scheduler() {
        // Four connections to four different network ports: the shared
        // comparator tree serves them all in the same packet slot (§4.2's
        // "overlaps communication scheduling with packet transmission on
        // each of the five output ports").
        let mut r = router();
        for (i, dir) in Direction::ALL.into_iter().enumerate() {
            r.apply_control(ControlCommand::SetConnection {
                incoming: ConnectionId(i as u16 + 1),
                outgoing: ConnectionId(i as u16 + 1),
                delay: 4,
                out_mask: Port::Dir(dir).mask(),
            })
            .unwrap();
        }
        let mut io = io();
        // Four packets arrive on the four network inputs in the same
        // cycles (the aggregate-bandwidth case the shared memory and
        // pipelined tree are sized for).
        let mut busy_counts = Vec::new();
        for now in 0..600u64 {
            io.begin_cycle();
            if now == 0 {
                for i in 1..PORT_COUNT {
                    io.rx[i] = Some(LinkSymbol::TcStart(Box::new(tc_packet(i as u16, 0, &r))));
                }
            } else if now < 20 {
                for i in 1..PORT_COUNT {
                    io.rx[i] = Some(LinkSymbol::TcCont { index: now as u8 });
                }
            }
            r.tick(now, &mut io);
            let busy = (1..PORT_COUNT)
                .filter(|&i| io.tx[i].as_ref().is_some_and(LinkSymbol::is_time_constrained))
                .count();
            busy_counts.push(busy);
            io.tx = Default::default();
        }
        assert_eq!(busy_counts.iter().max(), Some(&4), "all four ports must stream simultaneously");
        let total: u64 = (1..PORT_COUNT).map(|i| r.stats().tc_transmitted[i]).sum();
        assert_eq!(total, 4, "every port served its packet");
    }

    #[test]
    fn be_round_robin_shares_an_output_between_inputs() {
        // Two best-effort streams arrive on different network inputs, both
        // bound for the local reception port: round-robin alternates
        // packets between them.
        let mut r = router();
        let mut io = io();
        let mk_byte = |b: u8, head: bool, tail: bool| {
            LinkSymbol::Be(BeByte { byte: b, head, tail, trace: None })
        };
        // Interleave 3 short packets per input (offsets 0,0 → local):
        // header [0,0,len_lo,len_hi] + 1 payload byte.
        let mut delivered_order = Vec::new();
        let mut queue: Vec<(usize, Vec<LinkSymbol>)> = Vec::new();
        for pkt in 0..3 {
            for in_idx in [1usize, 2] {
                queue.push((
                    in_idx,
                    vec![
                        mk_byte(0, true, false),
                        mk_byte(0, false, false),
                        mk_byte(1, false, false),
                        mk_byte(0, false, false),
                        mk_byte(0xA0 + (in_idx as u8) * 16 + pkt, false, true),
                    ],
                ));
            }
        }
        // Feed both inputs one byte per cycle.
        let mut feeds: [std::collections::VecDeque<LinkSymbol>; 2] =
            [Default::default(), Default::default()];
        for (in_idx, symbols) in queue {
            feeds[in_idx - 1].extend(symbols);
        }
        for now in 0..800u64 {
            io.begin_cycle();
            for (k, feed) in feeds.iter_mut().enumerate() {
                if let Some(s) = feed.pop_front() {
                    io.rx[k + 1] = Some(s);
                }
            }
            r.tick(now, &mut io);
            io.tx = Default::default();
            io.credit_out = [0; PORT_COUNT];
            for (_, p) in io.delivered_be.drain(..) {
                delivered_order.push(p.payload[0]);
            }
        }
        assert_eq!(delivered_order.len(), 6, "all six packets delivered");
        // Packets from the two inputs alternate (round-robin at packet
        // granularity): no input gets two consecutive deliveries.
        for w in delivered_order.windows(2) {
            assert_ne!(w[0] & 0xF0, w[1] & 0xF0, "order {delivered_order:?}");
        }
    }

    #[test]
    fn leaf_sharing_delays_the_first_grant() {
        // §5.1's leaf sharing serialises keys through the base comparator:
        // the first selection after an idle period takes k× longer.
        let start_cycle = |sharing: usize| -> Cycle {
            let mut r = RealTimeRouter::new(RouterConfig {
                leaf_sharing: sharing,
                ..RouterConfig::default()
            })
            .unwrap();
            let out = Port::Dir(Direction::XPlus);
            r.apply_control(ControlCommand::SetConnection {
                incoming: ConnectionId(1),
                outgoing: ConnectionId(1),
                delay: 8,
                out_mask: out.mask(),
            })
            .unwrap();
            let mut io = io();
            io.inject_tc.push_back(tc_packet(1, 0, &r));
            for now in 0..600u64 {
                io.begin_cycle();
                r.tick(now, &mut io);
                if matches!(io.tx[out.index()], Some(LinkSymbol::TcStart(_))) {
                    return now;
                }
                io.tx = Default::default();
            }
            panic!("packet never transmitted");
        };
        let fast = start_cycle(1);
        let slow = start_cycle(8);
        assert_eq!(slow - fast, 28, "7 extra serialisation rounds × 4 cycles");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn trace_records_full_local_lifecycle() {
        use rtr_types::ids::NodeId;
        use rtr_types::trace::{shared, RingSink};

        let mut r = router();
        r.apply_control(ControlCommand::SetConnection {
            incoming: ConnectionId(1),
            outgoing: ConnectionId(1),
            delay: 4,
            out_mask: Port::Local.mask(),
        })
        .unwrap();
        let ring = shared(RingSink::new(256));
        r.set_trace_sink(NodeId(5), ring.clone());
        let mut io = io();
        io.inject_tc.push_back(tc_packet(1, 0, &r));
        let mut now = 0;
        run(&mut r, &mut io, &mut now, 200);
        assert_eq!(io.delivered_tc.len(), 1);

        let ring = ring.lock().unwrap();
        assert!(ring.records().all(|rec| rec.node == NodeId(5)));
        let tags: Vec<&str> = ring.records().map(|rec| rec.event.tag()).collect();
        // The full store-and-forward lifecycle, in causal order.
        let expected = [
            "tc_inject",
            "tc_arrive",
            "slot_alloc",
            "sched_select",
            "slot_free",
            "tc_transmit",
            "tc_deliver",
        ];
        let mut want = expected.iter().peekable();
        for tag in &tags {
            if want.peek() == Some(&tag) {
                want.next();
            }
        }
        let missing: Vec<&&str> = want.collect();
        assert!(missing.is_empty(), "missing {missing:?} in trace: {tags:?}");
        // Cycles are monotone within the record stream.
        let cycles: Vec<u64> = ring.records().map(|rec| rec.cycle).collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]), "cycles must be monotone");
    }

    #[test]
    fn conservation_holds_after_mixed_outcomes() {
        let mut r = router();
        r.apply_control(ControlCommand::SetConnection {
            incoming: ConnectionId(1),
            outgoing: ConnectionId(1),
            delay: 4,
            out_mask: Port::Local.mask(),
        })
        .unwrap();
        let mut io = io();
        io.inject_tc.push_back(tc_packet(1, 0, &r)); // delivered
        io.inject_tc.push_back(tc_packet(7, 0, &r)); // dropped: no connection
        let mut now = 0;
        run(&mut r, &mut io, &mut now, 300);
        r.check_conservation().unwrap();
        assert_eq!(r.stats().tc_buffered, 1);
        assert_eq!(r.stats().tc_retired, 1);
    }

    #[test]
    fn scheduler_time_honours_skew() {
        let mut r = router();
        assert_eq!(r.scheduler_time(40).raw(), 2);
        r.set_clock_skew(3);
        assert_eq!(r.scheduler_time(40).raw(), 5);
    }
}
