//! Link-level symbols and flow-control credits (paper §3.2).
//!
//! Each physical link is divided into two virtual channels: a packet-switched
//! channel for time-constrained traffic and a wormhole channel for
//! best-effort traffic, distinguished by a single bit on the link. The link
//! also carries an acknowledgement bit in the reverse direction for
//! best-effort flow control; we model those acknowledgements as [`Credit`]
//! symbols on a dedicated reverse queue.
//!
//! One [`LinkSymbol`] occupies the link for exactly one cycle (one byte
//! time). A 20-byte time-constrained packet therefore occupies 20 consecutive
//! symbol slots: a [`LinkSymbol::TcStart`] followed by 19
//! [`LinkSymbol::TcCont`] symbols. The simulator carries the full structured
//! packet on the start symbol (the remaining symbols are pure timing); the
//! byte-exact wire encodings of [`crate::packet`] exist so tests can confirm
//! the structured form is losslessly representable.

use crate::packet::{PacketTrace, TcPacket};

/// A single best-effort byte (flit) on the wormhole virtual channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BeByte {
    /// The data byte.
    pub byte: u8,
    /// Set on the first byte of a packet (start of the 4-byte header).
    pub head: bool,
    /// Set on the last byte of a packet.
    pub tail: bool,
    /// Simulation-only provenance, present on head bytes only; routers pass
    /// it through untouched and never consult it.
    pub trace: Option<PacketTrace>,
}

impl BeByte {
    /// A body (non-head, non-tail) byte.
    #[must_use]
    pub fn body(byte: u8) -> Self {
        BeByte { byte, head: false, tail: false, trace: None }
    }
}

/// One cycle's worth of payload on a unidirectional link.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LinkSymbol {
    /// First byte of a time-constrained packet; carries the structured
    /// packet for the simulator's benefit.
    TcStart(Box<TcPacket>),
    /// Byte `index` (1-based) of the in-flight time-constrained packet.
    TcCont {
        /// Position within the packet, `1..wire_len`.
        index: u8,
    },
    /// One best-effort byte on the wormhole virtual channel.
    Be(BeByte),
}

impl LinkSymbol {
    /// Whether the symbol belongs to the time-constrained virtual channel.
    #[must_use]
    pub fn is_time_constrained(&self) -> bool {
        matches!(self, LinkSymbol::TcStart(_) | LinkSymbol::TcCont { .. })
    }
}

/// A best-effort flow-control acknowledgement travelling against the data
/// direction: the downstream router freed `bytes` of flit-buffer space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Credit {
    /// Number of flit-buffer bytes freed (usually 1).
    pub bytes: u16,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SlotClock;
    use crate::ids::ConnectionId;

    #[test]
    fn symbol_class_detection() {
        let packet = TcPacket {
            conn: ConnectionId(0),
            arrival: SlotClock::new(8).wrap(0),
            payload: vec![0; 18].into(),
            trace: PacketTrace::default(),
        };
        assert!(LinkSymbol::TcStart(Box::new(packet)).is_time_constrained());
        assert!(LinkSymbol::TcCont { index: 5 }.is_time_constrained());
        assert!(!LinkSymbol::Be(BeByte::body(0)).is_time_constrained());
    }

    #[test]
    fn body_bytes_carry_no_trace() {
        let b = BeByte::body(0xEE);
        assert!(!b.head && !b.tail && b.trace.is_none());
        assert_eq!(b.byte, 0xEE);
    }
}
