//! Node, port, connection and traffic-class identifiers.

/// Identifies a processing node (router) in the network.
///
/// The mapping to mesh coordinates is owned by the topology
/// (`rtr_mesh::topology`); `NodeId` itself is a flat index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub u16);

impl NodeId {
    /// Flat index of the node.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A per-node connection identifier, indexing the router's connection table.
///
/// The paper's chip supports 256 connections per router (Table 4a), so the
/// identifier fits the one-byte field of the time-constrained packet header
/// (Figure 3a). Connection identifiers are *hop-local*: each router rewrites
/// the identifier to the value the next hop's table expects (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConnectionId(pub u16);

impl ConnectionId {
    /// Flat index into the connection table.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl std::fmt::Display for ConnectionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A mesh link direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Direction {
    /// Towards increasing x.
    XPlus,
    /// Towards decreasing x.
    XMinus,
    /// Towards increasing y.
    YPlus,
    /// Towards decreasing y.
    YMinus,
}

impl Direction {
    /// All four directions, in port-index order.
    pub const ALL: [Direction; 4] =
        [Direction::XPlus, Direction::XMinus, Direction::YPlus, Direction::YMinus];

    /// The direction a packet arrives *from* when sent in this direction.
    #[must_use]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::XPlus => Direction::XMinus,
            Direction::XMinus => Direction::XPlus,
            Direction::YPlus => Direction::YMinus,
            Direction::YMinus => Direction::YPlus,
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Direction::XPlus => "+x",
            Direction::XMinus => "-x",
            Direction::YPlus => "+y",
            Direction::YMinus => "-y",
        };
        f.write_str(s)
    }
}

/// One of the router's five port positions (Figure 2).
///
/// `Local` is the processor interface: on the input side it carries the
/// time-constrained and best-effort injection queues, on the output side the
/// shared reception port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Port {
    /// The processor interface (injection / reception).
    Local,
    /// A network link in the given direction.
    Dir(Direction),
}

/// Number of ports on each side of the router (1 local + 4 network).
pub const PORT_COUNT: usize = 5;

impl Port {
    /// All five ports in index order (`Local` first).
    pub const ALL: [Port; PORT_COUNT] = [
        Port::Local,
        Port::Dir(Direction::XPlus),
        Port::Dir(Direction::XMinus),
        Port::Dir(Direction::YPlus),
        Port::Dir(Direction::YMinus),
    ];

    /// Dense index in `0..PORT_COUNT`.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Port::Local => 0,
            Port::Dir(Direction::XPlus) => 1,
            Port::Dir(Direction::XMinus) => 2,
            Port::Dir(Direction::YPlus) => 3,
            Port::Dir(Direction::YMinus) => 4,
        }
    }

    /// Inverse of [`Port::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= PORT_COUNT`.
    #[must_use]
    pub fn from_index(index: usize) -> Port {
        Port::ALL[index]
    }

    /// The network direction, if this is not the local port.
    #[must_use]
    pub fn direction(self) -> Option<Direction> {
        match self {
            Port::Local => None,
            Port::Dir(d) => Some(d),
        }
    }

    /// Single-bit mask with this port's bit set, for the connection table's
    /// output-port bit masks (Table 3) and the scheduler leaves (Figure 5).
    #[must_use]
    pub fn mask(self) -> u8 {
        1 << self.index()
    }
}

impl std::fmt::Display for Port {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Port::Local => f.write_str("local"),
            Port::Dir(d) => write!(f, "{d}"),
        }
    }
}

/// Iterates the ports set in an output-port bit mask, in index order.
pub fn ports_in_mask(mask: u8) -> impl Iterator<Item = Port> {
    Port::ALL.into_iter().filter(move |p| mask & p.mask() != 0)
}

/// The two traffic classes the router mixes (§3, Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TrafficClass {
    /// Time-constrained traffic: fixed-size packets, packet switching,
    /// deadline-driven link scheduling.
    TimeConstrained,
    /// Best-effort traffic: variable-size packets, wormhole switching,
    /// round-robin arbitration.
    BestEffort,
}

impl std::fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrafficClass::TimeConstrained => f.write_str("time-constrained"),
            TrafficClass::BestEffort => f.write_str("best-effort"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_index_round_trips() {
        for (i, p) in Port::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(Port::from_index(i), p);
        }
    }

    #[test]
    fn direction_opposites_are_involutive() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn masks_are_disjoint_and_cover_five_bits() {
        let mut acc = 0u8;
        for p in Port::ALL {
            assert_eq!(acc & p.mask(), 0, "masks must be disjoint");
            acc |= p.mask();
        }
        assert_eq!(acc, 0b1_1111);
    }

    #[test]
    fn ports_in_mask_enumerates_set_bits() {
        let mask = Port::Local.mask() | Port::Dir(Direction::YMinus).mask();
        let ports: Vec<Port> = ports_in_mask(mask).collect();
        assert_eq!(ports, vec![Port::Local, Port::Dir(Direction::YMinus)]);
        assert_eq!(ports_in_mask(0).count(), 0);
        assert_eq!(ports_in_mask(0b1_1111).count(), 5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(ConnectionId(7).to_string(), "c7");
        assert_eq!(Port::Dir(Direction::XMinus).to_string(), "-x");
        assert_eq!(Port::Local.to_string(), "local");
        assert_eq!(TrafficClass::BestEffort.to_string(), "best-effort");
    }
}
