//! The wrapping on-chip scheduler clock (paper §4.3, Figure 6).
//!
//! The router limits the size of packet sorting keys by bounding the range of
//! local delay parameters: as long as every connection's `h_{j-1} + d_{j-1}`
//! and `d_j` are **less than half the clock range**, logical arrival times
//! and deadlines can be interpreted correctly with modulo arithmetic even
//! when the clock rolls over.
//!
//! At current time `t`, a valid logical arrival time `ℓ` lies in the window
//! `[t - d_j, t + (h_{j-1} + d_{j-1})]`, both offsets strictly below half the
//! range. A value *behind or at* `t` (within half the range) is **on-time**;
//! a value *ahead* of `t` is **early**.

use crate::time::Slot;

/// A value of the wrapping scheduler clock, i.e. an absolute slot count
/// reduced modulo the clock range.
///
/// `LogicalTime` is only meaningful relative to a [`SlotClock`] that defines
/// the clock width; construct one via [`SlotClock::wrap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LogicalTime(u32);

impl LogicalTime {
    /// Raw wrapped value (always `< 2^bits` of the owning clock).
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for LogicalTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The on-chip scheduler clock: a `bits`-wide wrapping counter of slots.
///
/// All comparisons are *windowed*: they assume the two values are within half
/// the clock range of each other, which the paper's admission control
/// guarantees (§4.3).
///
/// # Example
///
/// The concrete example of the paper's Figure 6 (8-bit clock, `t = 240`):
///
/// ```
/// use rtr_types::clock::SlotClock;
///
/// let clock = SlotClock::new(8);
/// let t = clock.wrap(240);
/// // ℓ = 80: (t - 80) mod 256 = 160 ≥ 128, so the packet is early.
/// assert!(clock.is_early(clock.wrap(80), t));
/// // ℓ = 210: (t - 210) mod 256 = 30 < 128, so the packet is on-time.
/// assert!(!clock.is_early(clock.wrap(210), t));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SlotClock {
    bits: u32,
}

impl SlotClock {
    /// Creates a clock with the given width in bits.
    ///
    /// The paper's chip uses 8 bits (Table 4a).
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 30`.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!((2..=30).contains(&bits), "clock width must be in 2..=30 bits");
        Self { bits }
    }

    /// Clock width in bits.
    #[must_use]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// Full range of the clock (`2^bits` slot values).
    #[must_use]
    pub fn range(self) -> u32 {
        1 << self.bits
    }

    /// Half the clock range: the largest usable window for delay parameters.
    ///
    /// Admission control must enforce `h_{j-1} + d_{j-1} < half_range()` and
    /// `d_j < half_range()` for every connection (§4.3).
    #[must_use]
    pub fn half_range(self) -> u32 {
        1 << (self.bits - 1)
    }

    /// Reduces an absolute slot count to a wrapped clock value.
    #[must_use]
    pub fn wrap(self, slot: Slot) -> LogicalTime {
        LogicalTime((slot & u64::from(self.range() - 1)) as u32)
    }

    /// `(a - b) mod 2^bits`: how far `a` is ahead of `b` on the clock circle.
    #[must_use]
    pub fn diff(self, a: LogicalTime, b: LogicalTime) -> u32 {
        a.0.wrapping_sub(b.0) & (self.range() - 1)
    }

    /// Adds a (non-negative) slot offset to a wrapped value.
    #[must_use]
    pub fn add(self, a: LogicalTime, offset: u32) -> LogicalTime {
        LogicalTime((a.0 + offset) & (self.range() - 1))
    }

    /// Signed windowed separation `a - b` in slots: positive when `a` is
    /// ahead of `b` on the clock circle (within half the range), negative
    /// when behind.
    ///
    /// This is the reading a slack metric wants: with `a` a hop deadline and
    /// `b` the current scheduler time, the result is slots of slack left
    /// (negative = the deadline already passed).
    #[must_use]
    pub fn signed_diff(self, a: LogicalTime, b: LogicalTime) -> i32 {
        let ahead = self.diff(a, b);
        if ahead < self.half_range() {
            ahead as i32
        } else {
            ahead as i32 - self.range() as i32
        }
    }

    /// Whether a packet with logical arrival time `l` is *early* at time `t`,
    /// i.e. its eligibility instant has not yet been reached.
    ///
    /// Windowed rule (Figure 6): the packet is on-time when
    /// `(t - l) mod 2^bits < half_range()`, early otherwise.
    #[must_use]
    pub fn is_early(self, l: LogicalTime, t: LogicalTime) -> bool {
        self.diff(t, l) >= self.half_range()
    }

    /// Whether a deadline `dl` has already passed at time `t`
    /// (strictly in the past within the half-range window).
    ///
    /// A deadline equal to `t` has *not* passed: the link may still transmit
    /// the packet in the current slot.
    #[must_use]
    pub fn has_passed(self, dl: LogicalTime, t: LogicalTime) -> bool {
        let behind = self.diff(t, dl);
        behind > 0 && behind < self.half_range()
    }

    /// Slots remaining until `future` is reached from `t`, assuming `future`
    /// is not in the past window (otherwise returns the aliased large value).
    #[must_use]
    pub fn until(self, future: LogicalTime, t: LogicalTime) -> u32 {
        self.diff(future, t)
    }
}

impl Default for SlotClock {
    /// The paper's 8-bit clock.
    fn default() -> Self {
        Self::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn figure6_example() {
        // Figure 6: 8-bit clock, t = 240.
        let c = SlotClock::new(8);
        let t = c.wrap(240);
        assert!(c.is_early(c.wrap(80), t), "l = 80 must be early");
        assert!(!c.is_early(c.wrap(210), t), "l = 210 must be on-time");
        // The window spans (t - 128, t + 128]: l = 113 (= 240 - 127) is the
        // oldest representable on-time value.
        assert!(!c.is_early(c.wrap(113), t));
        // One slot further back aliases to "early".
        assert!(c.is_early(c.wrap(112), t));
    }

    #[test]
    fn wrap_reduces_modulo_range() {
        let c = SlotClock::new(8);
        assert_eq!(c.wrap(256).raw(), 0);
        assert_eq!(c.wrap(511).raw(), 255);
        assert_eq!(c.wrap(1 << 20).raw(), 0);
    }

    #[test]
    fn diff_is_modular() {
        let c = SlotClock::new(8);
        assert_eq!(c.diff(c.wrap(10), c.wrap(250)), 16);
        assert_eq!(c.diff(c.wrap(250), c.wrap(10)), 240);
        assert_eq!(c.diff(c.wrap(5), c.wrap(5)), 0);
    }

    #[test]
    fn add_wraps() {
        let c = SlotClock::new(8);
        assert_eq!(c.add(c.wrap(250), 10).raw(), 4);
    }

    #[test]
    fn deadline_passing() {
        let c = SlotClock::new(8);
        let t = c.wrap(100);
        assert!(!c.has_passed(c.wrap(100), t), "deadline == t has not passed");
        assert!(c.has_passed(c.wrap(99), t));
        assert!(!c.has_passed(c.wrap(101), t));
        // Across rollover.
        let t = c.wrap(3);
        assert!(c.has_passed(c.wrap(255), t));
        assert!(!c.has_passed(c.wrap(10), t));
    }

    #[test]
    fn signed_diff_reads_ahead_and_behind() {
        let c = SlotClock::new(8);
        assert_eq!(c.signed_diff(c.wrap(105), c.wrap(100)), 5);
        assert_eq!(c.signed_diff(c.wrap(95), c.wrap(100)), -5);
        assert_eq!(c.signed_diff(c.wrap(100), c.wrap(100)), 0);
        // Across rollover in both directions.
        assert_eq!(c.signed_diff(c.wrap(3), c.wrap(250)), 9);
        assert_eq!(c.signed_diff(c.wrap(250), c.wrap(3)), -9);
        // Exactly half the range away reads as behind (on-time window is
        // (t - half, t]).
        assert_eq!(c.signed_diff(c.wrap(228), c.wrap(100)), -128);
    }

    #[test]
    fn until_counts_forward() {
        let c = SlotClock::new(8);
        assert_eq!(c.until(c.wrap(5), c.wrap(250)), 11);
        assert_eq!(c.until(c.wrap(250), c.wrap(250)), 0);
    }

    #[test]
    #[should_panic(expected = "clock width")]
    fn one_bit_clock_rejected() {
        let _ = SlotClock::new(1);
    }

    proptest! {
        /// Wrapped arithmetic agrees with unbounded arithmetic whenever the
        /// true separation is inside the half-range window — the exact
        /// property the paper's §4.3 relies on.
        #[test]
        fn windowed_classification_matches_unbounded(
            bits in 3u32..=16,
            t_abs in 0u64..1_000_000,
            ahead in proptest::bool::ANY,
            sep in 0u32..u32::MAX,
        ) {
            let c = SlotClock::new(bits);
            let sep = sep % c.half_range();
            let l_abs = if ahead {
                t_abs + u64::from(sep)
            } else {
                t_abs.saturating_sub(u64::from(sep))
            };
            let t = c.wrap(t_abs);
            let l = c.wrap(l_abs);
            let truly_early = l_abs > t_abs;
            prop_assert_eq!(c.is_early(l, t), truly_early);
            if truly_early {
                prop_assert_eq!(c.until(l, t), (l_abs - t_abs) as u32);
            } else {
                prop_assert_eq!(c.diff(t, l), (t_abs - l_abs) as u32);
            }
        }

        /// `diff` and `add` are inverse within the window.
        #[test]
        fn add_then_diff_round_trips(bits in 3u32..=16, base in 0u64..1_000_000, off in 0u32..u32::MAX) {
            let c = SlotClock::new(bits);
            let off = off % c.half_range();
            let base = c.wrap(base);
            prop_assert_eq!(c.diff(c.add(base, off), base), off);
        }
    }
}
