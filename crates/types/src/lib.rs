//! Shared vocabulary types for the real-time router reproduction.
//!
//! This crate defines the small, widely shared data types used by every other
//! crate in the workspace:
//!
//! * [`time`] — raw cycle/slot counters and conversions,
//! * [`clock`] — the wrapping on-chip scheduler clock of the paper's
//!   Figure 6, with windowed modulo comparisons,
//! * [`key`] — the 9-bit packet sorting key of Figure 4,
//! * [`ids`] — node, port, and connection identifiers,
//! * [`packet`] — the time-constrained and best-effort packet formats of
//!   Figure 3, including their wire encodings,
//! * [`flit`] — link-level symbols (flits) and flow-control credits,
//! * [`config`] — the architectural parameters of Table 4(a) and the
//!   per-class policy matrix of Table 2,
//! * [`trace`] — cycle-accurate packet lifecycle events, trace sinks, and
//!   the JSON Lines telemetry format.
//!
//! # Example
//!
//! ```
//! use rtr_types::clock::SlotClock;
//! use rtr_types::key::{LatePolicy, SortKey};
//!
//! // The paper's Figure 6: an 8-bit clock at t = 240.
//! let clock = SlotClock::new(8);
//! let t = clock.wrap(240);
//! assert!(clock.is_early(clock.wrap(80), t)); // ℓ = 80 is early traffic
//! assert!(!clock.is_early(clock.wrap(210), t)); // ℓ = 210 is on-time
//!
//! // On-time packets sort by time-to-deadline.
//! let key = SortKey::compute(&clock, clock.wrap(210), 8, t, LatePolicy::Saturate);
//! assert!(key.is_on_time());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chip;
pub mod clock;
pub mod config;
pub mod error;
pub mod flit;
pub mod ids;
pub mod key;
pub mod packet;
pub mod time;
pub mod trace;

pub use chip::ChipGauges;
pub use chip::{Chip, ChipIo};
pub use clock::{LogicalTime, SlotClock};
pub use config::{RouterConfig, TimingConfig};
pub use error::{ConfigError, PacketDecodeError};
pub use flit::{BeByte, Credit, LinkSymbol};
pub use ids::{ConnectionId, Direction, NodeId, Port, TrafficClass};
pub use key::{LatePolicy, SortKey};
pub use packet::{BeHeader, BePacket, PacketTrace, TcPacket};
pub use time::{Cycle, Slot};
pub use trace::{TraceEvent, TraceRecord, TraceSink};
