//! Architectural parameters (Table 4a) and the per-class policy matrix
//! (Table 2).
//!
//! [`RouterConfig::default`] reproduces the paper's chip exactly: 256
//! connections, 256 time-constrained packet buffers, an 8-bit clock with
//! 9-bit sorting keys, a two-stage comparator-tree pipeline, and 10-byte flit
//! input buffers. Every parameter can be varied for the scalability and
//! ablation experiments of §5.1/§7.

use crate::error::ConfigError;
use crate::ids::TrafficClass;
use crate::key::LatePolicy;

/// Per-hop pipeline timing of the router datapath, in cycles.
///
/// These reproduce the overheads the paper names for the wormhole loop-back
/// experiment (§5.2): "synchronizing the arriving bytes, processing the
/// packet header, and accumulating five-byte chunks for access to the
/// router's internal bus". With the defaults a router traversal adds
/// `sync + header + chunk_bytes + bus_grant = 10` cycles of head latency, so
/// the paper's three-traversal loop-back sees `30 + b` cycles end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimingConfig {
    /// Cycles to synchronise arriving bytes at an input port.
    pub sync_cycles: u64,
    /// Cycles to process a packet header (route decode / table lookup).
    pub header_cycles: u64,
    /// Cycles to win a grant on the shared internal bus.
    pub bus_grant_cycles: u64,
    /// Wire latency of an external link, in cycles.
    pub link_latency_cycles: u64,
    /// Latency from a scheduler selection request to the grant, in cycles.
    /// Models the two-stage comparator-tree pipeline of §5.1 shared by the
    /// five output ports (one selection per port per packet slot, with
    /// slack).
    pub sched_latency_cycles: u64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            sync_cycles: 2,
            header_cycles: 2,
            bus_grant_cycles: 1,
            link_latency_cycles: 0,
            sched_latency_cycles: 4,
        }
    }
}

/// Which link-scheduling logic the router instantiates.
///
/// The fabricated chip uses the full comparator tree of Figure 5; the
/// paper's §7 considers "approximate versions of real-time channels, as
/// well as new schemes with reduced implementation complexity" — the
/// banded variant quantises laxity and serves FIFO within a band, trading
/// bounded priority inversion for hardware that scales with the band count
/// instead of the packet count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SchedulerKind {
    /// The exact comparator tree (Figure 5). Default.
    #[default]
    ComparatorTree,
    /// Quantised-laxity bands of `2^band_shift` slots, FIFO within a band.
    Banded {
        /// Laxity bits dropped before comparison.
        band_shift: u32,
    },
    /// The Table 1 reference discipline evaluated directly (no keys, no
    /// comparators) — the specification run as a live scheduler, for
    /// ablation against the implementations. Requires
    /// [`LatePolicy::Saturate`].
    Oracle,
}

/// Architectural parameters of the real-time router (Table 4a).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RouterConfig {
    /// Connection-table entries per router (paper: 256).
    pub connections: usize,
    /// Time-constrained packet buffers in the shared packet memory
    /// (paper: 256). Also the number of comparator-tree leaves.
    pub packet_slots: usize,
    /// Width of the on-chip slot clock in bits (paper: 8; keys are one bit
    /// wider).
    pub clock_bits: u32,
    /// Size of a time-constrained packet in bytes, including its two header
    /// bytes; also the length of a scheduler slot in cycles (paper: 20).
    pub slot_bytes: usize,
    /// Best-effort flit input buffer per network input port, in bytes
    /// (paper: 10).
    pub flit_buffer_bytes: usize,
    /// Bytes accumulated per internal-bus transfer for wormhole traffic
    /// (paper: five-byte chunks).
    pub chunk_bytes: usize,
    /// Width of the shared packet memory in bytes (paper: 10-byte SRAM).
    pub memory_chunk_bytes: usize,
    /// Comparator-tree pipeline depth (paper: 2 stages).
    pub sched_pipeline_stages: usize,
    /// Leaves multiplexed onto one base comparator (paper: 1; §5.1's cost
    /// reduction serialises `k` packets' keys through one comparator,
    /// which multiplies the selection latency by `k`).
    pub leaf_sharing: usize,
    /// Treatment of late packets in key computation (see
    /// [`LatePolicy`]).
    pub late_policy: LatePolicy,
    /// Link-scheduling logic variant (see [`SchedulerKind`]).
    pub scheduler: SchedulerKind,
    /// Enable virtual cut-through for time-constrained traffic — the
    /// paper's §7 extension: "permit an arriving packet to proceed
    /// directly to its output link if no other packets have smaller
    /// sorting keys". The paper's fabricated chip buffers every packet
    /// (`false`).
    pub tc_cut_through: bool,
    /// Datapath pipeline timing.
    pub timing: TimingConfig,
}

impl Default for RouterConfig {
    /// The paper's chip (Table 4a).
    fn default() -> Self {
        RouterConfig {
            connections: 256,
            packet_slots: 256,
            clock_bits: 8,
            slot_bytes: 20,
            flit_buffer_bytes: 10,
            chunk_bytes: 5,
            memory_chunk_bytes: 10,
            sched_pipeline_stages: 2,
            leaf_sharing: 1,
            late_policy: LatePolicy::Saturate,
            scheduler: SchedulerKind::ComparatorTree,
            tc_cut_through: false,
            timing: TimingConfig::default(),
        }
    }
}

impl RouterConfig {
    /// Payload bytes per time-constrained packet (18 with the defaults:
    /// 20-byte packet minus the two header bytes of Figure 3a).
    #[must_use]
    pub fn tc_data_bytes(&self) -> usize {
        self.slot_bytes - 2
    }

    /// The sorting-key width in bits (clock bits + 1; Table 4a's "8 (9)").
    #[must_use]
    pub fn key_bits(&self) -> u32 {
        self.clock_bits + 1
    }

    /// The effective scheduler selection latency in cycles: the pipeline
    /// latency multiplied by the leaf-sharing serialisation factor (§5.1).
    #[must_use]
    pub fn effective_sched_latency(&self) -> u64 {
        self.timing.sched_latency_cycles * self.leaf_sharing as u64
    }

    /// Total best-effort bytes one input path can hold: the flit input
    /// buffer plus the port's nominal staging buffer (§3.4: "each port
    /// includes nominal buffer space to avoid stalling the flow of data").
    /// This is the credit pool advertised upstream; it must cover the
    /// credit round trip for wormhole streams to flow at one byte per cycle
    /// in the absence of contention.
    #[must_use]
    pub fn be_path_bytes(&self) -> usize {
        self.flit_buffer_bytes + self.memory_chunk_bytes
    }

    /// Checks parameter ranges and mutual consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn range(
            parameter: &'static str,
            value: u64,
            ok: bool,
            constraint: &'static str,
        ) -> Result<(), ConfigError> {
            if ok {
                Ok(())
            } else {
                Err(ConfigError::OutOfRange { parameter, constraint, value })
            }
        }
        range(
            "connections",
            self.connections as u64,
            (1..=65_536).contains(&self.connections),
            "1..=65536",
        )?;
        range(
            "packet_slots",
            self.packet_slots as u64,
            (1..=65_536).contains(&self.packet_slots),
            "1..=65536",
        )?;
        range(
            "clock_bits",
            u64::from(self.clock_bits),
            (2..=30).contains(&self.clock_bits),
            "2..=30",
        )?;
        range(
            "slot_bytes",
            self.slot_bytes as u64,
            self.slot_bytes >= 3,
            "at least 3 (two header bytes + payload)",
        )?;
        range("chunk_bytes", self.chunk_bytes as u64, self.chunk_bytes >= 1, "at least 1")?;
        range(
            "memory_chunk_bytes",
            self.memory_chunk_bytes as u64,
            self.memory_chunk_bytes >= 1,
            "at least 1",
        )?;
        range(
            "sched_pipeline_stages",
            self.sched_pipeline_stages as u64,
            (1..=8).contains(&self.sched_pipeline_stages),
            "1..=8",
        )?;
        range(
            "leaf_sharing",
            self.leaf_sharing as u64,
            (1..=64).contains(&self.leaf_sharing),
            "1..=64",
        )?;
        if self.flit_buffer_bytes < self.chunk_bytes {
            return Err(ConfigError::Inconsistent {
                reason: format!(
                    "flit buffer ({} bytes) must hold at least one chunk ({} bytes)",
                    self.flit_buffer_bytes, self.chunk_bytes
                ),
            });
        }
        if self.slot_bytes < self.chunk_bytes {
            return Err(ConfigError::Inconsistent {
                reason: format!(
                    "a packet slot ({} bytes) must be at least one chunk ({} bytes)",
                    self.slot_bytes, self.chunk_bytes
                ),
            });
        }
        if let SchedulerKind::Banded { band_shift } = self.scheduler {
            if band_shift >= self.clock_bits - 1 {
                return Err(ConfigError::Inconsistent {
                    reason: format!(
                        "band shift {band_shift} must leave at least one laxity band \
                         (clock is {} bits)",
                        self.clock_bits
                    ),
                });
            }
        }
        if self.scheduler == SchedulerKind::Oracle && self.late_policy != LatePolicy::Saturate {
            return Err(ConfigError::Inconsistent {
                reason: "the oracle scheduler implements Table 1, which saturates late packets"
                    .to_string(),
            });
        }
        Ok(())
    }
}

/// One row of the paper's Table 2: how a traffic class is treated by each
/// architectural mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClassPolicy {
    /// Switching scheme.
    pub switching: Switching,
    /// Link arbitration.
    pub arbitration: Arbitration,
    /// Routing scheme.
    pub routing: Routing,
    /// Buffer organisation.
    pub buffering: Buffering,
    /// Flow-control scheme.
    pub flow_control: FlowControl,
    /// Whether packets are fixed-size.
    pub fixed_packet_size: bool,
}

/// Switching policies (Table 2 row "Switching").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Switching {
    /// Store-and-forward packet switching.
    PacketSwitching,
    /// Wormhole switching.
    Wormhole,
    /// Virtual cut-through (the §7 future-work extension).
    VirtualCutThrough,
}

/// Link arbitration policies (Table 2 row "Link arbitration").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Arbitration {
    /// Deadline-driven (multiclass earliest-due-date).
    DeadlineDriven,
    /// Round-robin over the input links.
    RoundRobin,
    /// Fixed class priority (the baseline priority-VC design of §6).
    ClassPriority,
}

/// Routing policies (Table 2 row "Routing").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Routing {
    /// Table-driven, supporting multicast (connection table indexed by
    /// connection identifier).
    TableDrivenMulticast,
    /// Dimension-ordered unicast on header offsets.
    DimensionOrderedUnicast,
}

/// Buffer organisations (Table 2 row "Buffers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Buffering {
    /// A single packet memory shared by the output ports.
    SharedOutputQueues,
    /// Small flit buffers at the input links.
    InputFlitBuffers,
}

/// Flow-control schemes (Table 2 row "Flow control").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FlowControl {
    /// Rate-based: buffer space is reserved by admission control, no
    /// per-packet acknowledgements.
    RateBased,
    /// Per-flit acknowledgements on the reverse link.
    FlitAcks,
}

/// The paper's Table 2: the policy the real-time router applies to each
/// traffic class.
#[must_use]
pub fn table2_policy(class: TrafficClass) -> ClassPolicy {
    match class {
        TrafficClass::TimeConstrained => ClassPolicy {
            switching: Switching::PacketSwitching,
            arbitration: Arbitration::DeadlineDriven,
            routing: Routing::TableDrivenMulticast,
            buffering: Buffering::SharedOutputQueues,
            flow_control: FlowControl::RateBased,
            fixed_packet_size: true,
        },
        TrafficClass::BestEffort => ClassPolicy {
            switching: Switching::Wormhole,
            arbitration: Arbitration::RoundRobin,
            routing: Routing::DimensionOrderedUnicast,
            buffering: Buffering::InputFlitBuffers,
            flow_control: FlowControl::FlitAcks,
            fixed_packet_size: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_4a() {
        let c = RouterConfig::default();
        assert_eq!(c.connections, 256);
        assert_eq!(c.packet_slots, 256);
        assert_eq!(c.clock_bits, 8);
        assert_eq!(c.key_bits(), 9);
        assert_eq!(c.slot_bytes, 20);
        assert_eq!(c.tc_data_bytes(), 18);
        assert_eq!(c.flit_buffer_bytes, 10);
        assert_eq!(c.sched_pipeline_stages, 2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn per_traversal_head_latency_is_ten_cycles() {
        // sync (2) + header (2) + chunk accumulation (5) + bus grant (1)
        // = 10 cycles per traversal; 3 traversals = the paper's 30-cycle
        // overhead of Experiment 1.
        let t = TimingConfig::default();
        let c = RouterConfig::default();
        assert_eq!(t.sync_cycles + t.header_cycles + c.chunk_bytes as u64 + t.bus_grant_cycles, 10);
    }

    #[test]
    fn leaf_sharing_scales_the_selection_latency() {
        let base = RouterConfig::default();
        assert_eq!(base.effective_sched_latency(), 4);
        let shared = RouterConfig { leaf_sharing: 8, ..RouterConfig::default() };
        assert_eq!(shared.effective_sched_latency(), 32);
        assert!(shared.validate().is_ok());
        assert!(RouterConfig { leaf_sharing: 0, ..RouterConfig::default() }.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = RouterConfig { clock_bits: 1, ..RouterConfig::default() };
        assert!(c.validate().is_err());
        c.clock_bits = 8;
        c.slot_bytes = 2;
        assert!(c.validate().is_err());
        c.slot_bytes = 20;
        c.flit_buffer_bytes = 2; // smaller than the 5-byte chunk
        assert!(matches!(c.validate(), Err(ConfigError::Inconsistent { .. })));
        c.flit_buffer_bytes = 10;
        c.connections = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn table2_matches_paper() {
        let tc = table2_policy(TrafficClass::TimeConstrained);
        assert_eq!(tc.switching, Switching::PacketSwitching);
        assert_eq!(tc.arbitration, Arbitration::DeadlineDriven);
        assert_eq!(tc.routing, Routing::TableDrivenMulticast);
        assert_eq!(tc.buffering, Buffering::SharedOutputQueues);
        assert_eq!(tc.flow_control, FlowControl::RateBased);
        assert!(tc.fixed_packet_size);

        let be = table2_policy(TrafficClass::BestEffort);
        assert_eq!(be.switching, Switching::Wormhole);
        assert_eq!(be.arbitration, Arbitration::RoundRobin);
        assert_eq!(be.routing, Routing::DimensionOrderedUnicast);
        assert_eq!(be.buffering, Buffering::InputFlitBuffers);
        assert_eq!(be.flow_control, FlowControl::FlitAcks);
        assert!(!be.fixed_packet_size);
    }
}
