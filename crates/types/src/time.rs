//! Raw simulation time: cycles and slots.
//!
//! The simulator advances in *cycles*; one cycle is the time a link needs to
//! transfer one byte (20 ns at the paper's 50 MHz links). Time-constrained
//! packets are a fixed 20 bytes, so the scheduler's *slot* — the unit the
//! on-chip clock ticks in — is 20 cycles (§5.1 of the paper: "the clock ticks
//! once per packet transmission time").

/// A simulation cycle count (one byte time per link, 20 ns in the paper).
pub type Cycle = u64;

/// An absolute (non-wrapping) scheduler slot count.
///
/// One slot is one time-constrained packet transmission time
/// ([`crate::config::RouterConfig::slot_bytes`] cycles). The on-chip clock of
/// [`crate::clock::SlotClock`] is this value reduced modulo the clock range.
pub type Slot = u64;

/// Converts an absolute cycle count to the slot containing it.
///
/// # Example
///
/// ```
/// use rtr_types::time::cycle_to_slot;
/// assert_eq!(cycle_to_slot(0, 20), 0);
/// assert_eq!(cycle_to_slot(19, 20), 0);
/// assert_eq!(cycle_to_slot(20, 20), 1);
/// ```
///
/// # Panics
///
/// Panics if `slot_bytes` is zero.
#[must_use]
pub fn cycle_to_slot(cycle: Cycle, slot_bytes: usize) -> Slot {
    assert!(slot_bytes > 0, "slot length must be positive");
    cycle / slot_bytes as u64
}

/// Converts an absolute slot count to the first cycle of that slot.
///
/// # Example
///
/// ```
/// use rtr_types::time::slot_to_cycle;
/// assert_eq!(slot_to_cycle(3, 20), 60);
/// ```
#[must_use]
pub fn slot_to_cycle(slot: Slot, slot_bytes: usize) -> Cycle {
    slot * slot_bytes as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_boundaries_round_trip() {
        for slot in 0..100 {
            let cycle = slot_to_cycle(slot, 20);
            assert_eq!(cycle_to_slot(cycle, 20), slot);
            assert_eq!(cycle_to_slot(cycle + 19, 20), slot);
            assert_eq!(cycle_to_slot(cycle + 20, 20), slot + 1);
        }
    }

    #[test]
    fn non_default_slot_length() {
        assert_eq!(cycle_to_slot(31, 16), 1);
        assert_eq!(slot_to_cycle(2, 16), 32);
    }

    #[test]
    #[should_panic(expected = "slot length must be positive")]
    fn zero_slot_length_panics() {
        let _ = cycle_to_slot(1, 0);
    }
}
