//! Packet sorting keys (paper §4.2, Figure 4).
//!
//! The base of the comparator tree computes, for every buffered
//! time-constrained packet, a small unsigned key normalised to the current
//! time `t` so the rest of the tree performs plain unsigned comparisons even
//! across clock rollover:
//!
//! ```text
//! on-time:    0 | 0 | (ℓ(m) + d) - t      (laxity: time to local deadline)
//! early:      0 | 1 | ℓ(m) - t            (time until eligibility)
//! ineligible: 1 | ...                     (empty leaf / wrong port)
//! ```
//!
//! With the paper's 8-bit clock the time field is 7 bits (differences are
//! bounded by half the clock range) and the whole key is 9 bits (Table 4a).

use crate::clock::{LogicalTime, SlotClock};

/// How the key computation treats an on-time packet whose deadline has
/// already passed.
///
/// The paper's admission control guarantees this cannot happen for admitted
/// traffic (§2), so the hardware does not special-case it; raw modulo
/// arithmetic would *alias* a late packet to a large key and starve it. The
/// simulator supports both behaviours so baseline/overload experiments remain
/// meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LatePolicy {
    /// Late packets saturate to laxity zero (most urgent). Default.
    #[default]
    Saturate,
    /// Faithful raw-hardware behaviour: the aliased (truncated) key is used.
    /// Callers can count occurrences via [`SortKey::is_aliased`].
    Wrap,
}

/// A normalised packet sorting key; smaller is more urgent.
///
/// Keys order: all on-time packets by laxity, then all early packets by
/// time-to-eligibility, then ineligible leaves. Comparison looks only at the
/// normalised value, exactly like the unsigned comparators of Figure 5.
#[derive(Debug, Clone, Copy)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SortKey {
    value: u32,
    /// Half the owning clock's range; the "early" bit position.
    half: u32,
    aliased: bool,
}

impl PartialEq for SortKey {
    fn eq(&self, other: &Self) -> bool {
        self.value == other.value
    }
}

impl Eq for SortKey {}

impl PartialOrd for SortKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SortKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.value.cmp(&other.value)
    }
}

impl std::hash::Hash for SortKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.value.hash(state);
    }
}

impl SortKey {
    /// Computes the key for a packet with logical arrival time `l` and local
    /// delay bound `d` (slots) at current time `t` (Figure 4).
    ///
    /// # Panics
    ///
    /// Panics if `d` is not below half the clock range — admission control
    /// must reject such connections (§4.3).
    #[must_use]
    pub fn compute(
        clock: &SlotClock,
        l: LogicalTime,
        d: u32,
        t: LogicalTime,
        late_policy: LatePolicy,
    ) -> SortKey {
        assert!(
            d < clock.half_range(),
            "local delay bound {d} must be below half the clock range {}",
            clock.half_range()
        );
        let half = clock.half_range();
        let field_mask = half - 1;
        if clock.is_early(l, t) {
            // Early: time remaining until the logical arrival instant. The
            // admission bound h + d < half keeps this inside the field; clamp
            // defensively for unvalidated traffic.
            let delta = clock.until(l, t);
            debug_assert!(delta >= 1);
            let field = delta.min(field_mask);
            SortKey { value: half | field, half, aliased: delta > field_mask }
        } else {
            let deadline = clock.add(l, d);
            if clock.has_passed(deadline, t) {
                match late_policy {
                    LatePolicy::Saturate => SortKey { value: 0, half, aliased: true },
                    LatePolicy::Wrap => {
                        SortKey { value: clock.diff(deadline, t) & field_mask, half, aliased: true }
                    }
                }
            } else {
                SortKey { value: clock.until(deadline, t), half, aliased: false }
            }
        }
    }

    /// The key of an ineligible leaf: larger than every packet key.
    #[must_use]
    pub fn ineligible(clock: &SlotClock) -> SortKey {
        SortKey { value: clock.range(), half: clock.half_range(), aliased: false }
    }

    /// Raw unsigned key value (what the comparator hardware compares).
    #[must_use]
    pub fn value(self) -> u32 {
        self.value
    }

    /// Whether this key encodes an on-time packet.
    #[must_use]
    pub fn is_on_time(self) -> bool {
        self.value < self.half
    }

    /// Whether this key encodes an early packet.
    #[must_use]
    pub fn is_early(self) -> bool {
        self.value >= self.half && self.value < 2 * self.half
    }

    /// Whether this is the ineligible sentinel.
    #[must_use]
    pub fn is_ineligible(self) -> bool {
        self.value >= 2 * self.half
    }

    /// Whether modulo arithmetic aliased this key (late packet, or
    /// out-of-window earliness clamped into the field).
    #[must_use]
    pub fn is_aliased(self) -> bool {
        self.aliased
    }

    /// The time field: laxity for an on-time key, slots-to-eligibility for an
    /// early key, meaningless for the ineligible sentinel.
    #[must_use]
    pub fn time_field(self) -> u32 {
        self.value & (self.half - 1)
    }

    /// Total key width in bits (clock bits + 1, e.g. 9 for the 8-bit clock of
    /// Table 4a: ineligible bit + early bit + 7-bit time field).
    #[must_use]
    pub fn width_bits(clock: &SlotClock) -> u32 {
        clock.bits() + 1
    }
}

impl std::fmt::Display for SortKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_ineligible() {
            f.write_str("key(ineligible)")
        } else if self.is_early() {
            write!(f, "key(early+{})", self.time_field())
        } else {
            write!(f, "key(laxity {})", self.time_field())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn clock() -> SlotClock {
        SlotClock::new(8)
    }

    #[test]
    fn on_time_key_is_laxity() {
        let c = clock();
        let t = c.wrap(100);
        // ℓ = 95, d = 20 → deadline 115, laxity 15.
        let k = SortKey::compute(&c, c.wrap(95), 20, t, LatePolicy::Saturate);
        assert!(k.is_on_time());
        assert_eq!(k.value(), 15);
        assert_eq!(k.time_field(), 15);
        assert!(!k.is_aliased());
    }

    #[test]
    fn early_key_is_time_to_eligibility_with_early_bit() {
        let c = clock();
        let t = c.wrap(100);
        // ℓ = 110 → early by 10 slots; key = 128 | 10.
        let k = SortKey::compute(&c, c.wrap(110), 20, t, LatePolicy::Saturate);
        assert!(k.is_early());
        assert_eq!(k.value(), 128 | 10);
        assert_eq!(k.time_field(), 10);
    }

    #[test]
    fn every_on_time_key_beats_every_early_key() {
        let c = clock();
        let t = c.wrap(7); // near rollover
        let worst_on_time = SortKey::compute(&c, t, 127, t, LatePolicy::Saturate);
        let best_early = SortKey::compute(&c, c.add(t, 1), 1, t, LatePolicy::Saturate);
        assert!(worst_on_time < best_early);
    }

    #[test]
    fn ineligible_sorts_last() {
        let c = clock();
        let t = c.wrap(200);
        let worst_early =
            SortKey::compute(&c, c.add(t, c.half_range() - 1), 0, t, LatePolicy::Saturate);
        assert!(worst_early < SortKey::ineligible(&c));
        assert!(SortKey::ineligible(&c).is_ineligible());
        assert!(!worst_early.is_ineligible());
    }

    #[test]
    fn keys_order_correctly_across_rollover() {
        let c = clock();
        let t = c.wrap(250);
        // Deadline at 4 (wrapped, i.e. 260 absolute) vs deadline at 252.
        let later = SortKey::compute(&c, c.wrap(250), 10, t, LatePolicy::Saturate);
        let sooner = SortKey::compute(&c, c.wrap(248), 4, t, LatePolicy::Saturate);
        assert!(sooner < later, "deadline 252 must beat deadline 260");
    }

    #[test]
    fn late_packet_saturates_by_default() {
        let c = clock();
        let t = c.wrap(50);
        // ℓ = 30, d = 10 → deadline 40, already passed at t = 50.
        let k = SortKey::compute(&c, c.wrap(30), 10, t, LatePolicy::Saturate);
        assert_eq!(k.value(), 0);
        assert!(k.is_aliased());
    }

    #[test]
    fn late_packet_wraps_under_wrap_policy() {
        let c = clock();
        let t = c.wrap(50);
        let k = SortKey::compute(&c, c.wrap(30), 10, t, LatePolicy::Wrap);
        // Raw (deadline - t) mod 256 = (40 - 50) mod 256 = 246; truncated to
        // the 7-bit field: 246 & 127 = 118.
        assert_eq!(k.value(), 118);
        assert!(k.is_aliased());
    }

    #[test]
    fn key_width_matches_table_4a() {
        // "Clock (sorting key): 8 (9) bits".
        assert_eq!(SortKey::width_bits(&SlotClock::new(8)), 9);
    }

    #[test]
    fn class_predicates_respect_clock_width() {
        let c = SlotClock::new(4); // half range 8
        let t = c.wrap(0);
        let on_time = SortKey::compute(&c, t, 7, t, LatePolicy::Saturate);
        let early = SortKey::compute(&c, c.add(t, 3), 2, t, LatePolicy::Saturate);
        assert!(on_time.is_on_time() && !on_time.is_early());
        assert!(early.is_early() && !early.is_on_time());
        assert!(SortKey::ineligible(&c).is_ineligible());
    }

    #[test]
    #[should_panic(expected = "half the clock range")]
    fn oversized_delay_bound_rejected() {
        let c = clock();
        let t = c.wrap(0);
        let _ = SortKey::compute(&c, t, 128, t, LatePolicy::Saturate);
    }

    proptest! {
        /// On-time packets always sort ahead of early ones; within a class,
        /// smaller laxity / smaller time-to-arrival wins. This is the total
        /// order Table 1's queues rely on.
        #[test]
        fn key_order_matches_queue_discipline(
            t_abs in 200u64..10_000,
            l1_off in -100i64..100,
            d1 in 0u32..128,
            l2_off in -100i64..100,
            d2 in 0u32..128,
        ) {
            let c = SlotClock::new(8);
            let t = c.wrap(t_abs);
            let mk = |off: i64, d: u32| {
                let l_abs = (t_abs as i64 + off) as u64;
                // Only generate packets whose deadline has not passed, the
                // regime admission control guarantees.
                let deadline_abs = l_abs + u64::from(d);
                if deadline_abs < t_abs {
                    None
                } else {
                    Some((
                        SortKey::compute(&c, c.wrap(l_abs), d, t, LatePolicy::Saturate),
                        l_abs,
                        deadline_abs,
                    ))
                }
            };
            if let (Some((k1, l1, dl1)), Some((k2, l2, dl2))) = (mk(l1_off, d1), mk(l2_off, d2)) {
                let e1 = l1 > t_abs;
                let e2 = l2 > t_abs;
                match (e1, e2) {
                    (false, true) => prop_assert!(k1 < k2),
                    (true, false) => prop_assert!(k2 < k1),
                    (false, false) => prop_assert_eq!(k1 < k2, dl1 < dl2),
                    (true, true) => prop_assert_eq!(k1 < k2, l1 < l2),
                }
            }
        }

        /// Classification predicates partition every computed key.
        #[test]
        fn predicates_partition(bits in 3u32..=12, t_abs in 0u64..100_000, off in -60i64..60, d_raw in 0u32..4096) {
            let c = SlotClock::new(bits);
            let d = d_raw % c.half_range();
            let t = c.wrap(t_abs);
            let l_abs = (t_abs as i64 + off).max(0) as u64;
            let k = SortKey::compute(&c, c.wrap(l_abs), d, t, LatePolicy::Saturate);
            let classes =
                u32::from(k.is_on_time()) + u32::from(k.is_early()) + u32::from(k.is_ineligible());
            prop_assert_eq!(classes, 1);
            prop_assert!(k < SortKey::ineligible(&c));
        }
    }
}
