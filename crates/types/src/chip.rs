//! The chip-to-network interface: what any router model exchanges with its
//! node and links each cycle.
//!
//! Defining this interface here (rather than in the simulator crate) lets the
//! real-time router, the baseline routers, and the mesh simulator all agree
//! on one contract without dependency cycles. A [`Chip`] is ticked once per
//! cycle with a fresh view of arriving symbols and credits and fills in what
//! it drives onto the links; injection queues and delivery sinks persist
//! across cycles.

use std::collections::VecDeque;

use crate::flit::LinkSymbol;
use crate::ids::PORT_COUNT;
use crate::packet::{BePacket, TcPacket};
use crate::time::Cycle;

/// Per-cycle I/O bundle between a router chip and its node/links.
///
/// Index convention follows [`crate::ids::Port::index`]: index 0 is the local
/// port (whose network fields are unused — injection and delivery go through
/// the dedicated queues), indices 1–4 are the four mesh directions.
#[derive(Debug, Default)]
pub struct ChipIo {
    /// Data symbol arriving on each input port this cycle (cleared by the
    /// simulator every cycle before delivery).
    pub rx: [Option<LinkSymbol>; PORT_COUNT],
    /// Best-effort credit bytes arriving for each *output* port this cycle
    /// (flit-buffer space freed downstream).
    pub credit_in: [u16; PORT_COUNT],
    /// Data symbol the chip drives on each output port this cycle (filled by
    /// the chip; the simulator moves it onto the link and clears it).
    pub tx: [Option<LinkSymbol>; PORT_COUNT],
    /// Best-effort credit bytes the chip returns upstream on each *input*
    /// port this cycle.
    pub credit_out: [u16; PORT_COUNT],
    /// Time-constrained injection queue, written by the node's traffic
    /// source; the chip drains it at injection-port bandwidth.
    pub inject_tc: VecDeque<TcPacket>,
    /// Best-effort injection queue, written by the node's traffic source.
    pub inject_be: VecDeque<BePacket>,
    /// Time-constrained packets delivered through the reception port, with
    /// the delivery cycle (appended by the chip; drained by the node).
    pub delivered_tc: Vec<(Cycle, TcPacket)>,
    /// Best-effort packets delivered through the reception port (appended by
    /// the chip; drained by the node).
    pub delivered_be: Vec<(Cycle, BePacket)>,
}

impl ChipIo {
    /// A fresh I/O bundle with empty queues.
    #[must_use]
    pub fn new() -> Self {
        ChipIo::default()
    }

    /// Clears the per-cycle fields (`rx`, `credit_in`); called by the
    /// simulator before delivering this cycle's link arrivals. `tx` and
    /// `credit_out` are cleared when collected.
    pub fn begin_cycle(&mut self) {
        self.rx = Default::default();
        self.credit_in = [0; PORT_COUNT];
    }

    /// Heap bytes held behind this bundle's queues (allocated capacity,
    /// not occupancy), for the simulator's memory-footprint accounting.
    /// Packet payloads boxed inside the queues are not followed.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.inject_tc.capacity() * std::mem::size_of::<TcPacket>()
            + self.inject_be.capacity() * std::mem::size_of::<BePacket>()
            + self.delivered_tc.capacity() * std::mem::size_of::<(Cycle, TcPacket)>()
            + self.delivered_be.capacity() * std::mem::size_of::<(Cycle, BePacket)>()
    }
}

/// A point-in-time occupancy snapshot of a router chip, for telemetry
/// sampling.
///
/// All values are instantaneous gauges (not counters): the simulator samples
/// them every N cycles to build occupancy time series. Array fields follow
/// the [`crate::ids::Port::index`] convention.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChipGauges {
    /// Shared packet-memory slots currently holding a packet.
    pub memory_occupied: usize,
    /// Total shared packet-memory slots.
    pub memory_capacity: usize,
    /// Packets currently queued in the link scheduler (all outputs).
    pub sched_backlog: usize,
    /// Scheduled packets waiting for each output port (per-link queue depth).
    pub queue_depth: [usize; PORT_COUNT],
    /// Horizon register of each output port, in slots.
    pub horizon: [u32; PORT_COUNT],
    /// Best-effort flit-buffer bytes occupied on each input port.
    pub be_buffered: [usize; PORT_COUNT],
}

/// Wake-precision counters of a chip's [`Chip::next_event`] predictions.
///
/// `next_event` is allowed to be conservative — answering `now + 1` always
/// preserves correctness — but every unnecessary short answer forecloses a
/// leap the event core could otherwise have taken. Chips that can tell the
/// difference report how often (and why) they fell back to `now + 1` so the
/// next conservatism worth shaving is measurable instead of guessed at.
/// All values are cumulative counters since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WakeStats {
    /// Total `next_event` polls answered.
    pub polls: u64,
    /// Polls answered `now + 1` (no leap possible past this chip).
    pub short_polls: u64,
    /// Polls where the grant-pipeline sync guard (`had_candidate`
    /// disagreeing with the scheduler backlog) was the **only** wake source
    /// demanding `now + 1`. The guard no longer shortens the answer — the
    /// pipeline is settled in [`Chip::skip_quiet`] instead — so this counts
    /// how often the old conservatism *would* have fired.
    pub sync_guard_only: u64,
    /// Cycles of leaping **reclaimed** from `sync_guard_only` polls: the
    /// summed distance from `now + 1` to the wake the chip now reports. A
    /// chip still enforcing the guard reports the same sum as cycles
    /// foregone.
    pub sync_guard_foregone: u64,
}

impl WakeStats {
    /// Accumulates another chip's counters into this one.
    pub fn merge(&mut self, other: &WakeStats) {
        self.polls += other.polls;
        self.short_polls += other.short_polls;
        self.sync_guard_only += other.sync_guard_only;
        self.sync_guard_foregone += other.sync_guard_foregone;
    }
}

/// A router chip model that can sit at a node of the mesh simulator.
///
/// The simulator calls [`Chip::tick`] exactly once per cycle, in increasing
/// cycle order, after filling `io.rx`/`io.credit_in` with this cycle's link
/// arrivals. The chip reads those, updates internal state, fills
/// `io.tx`/`io.credit_out`, drains injection queues, and appends deliveries.
pub trait Chip {
    /// Advances the chip by one cycle.
    fn tick(&mut self, now: Cycle, io: &mut ChipIo);

    /// How many best-effort flit-buffer bytes each of this chip's *input*
    /// ports provides. The simulator uses this to initialise the upstream
    /// neighbour's credit counters.
    fn flit_buffer_bytes(&self) -> usize;

    /// Sets the initial best-effort credit pool of an output port to the
    /// downstream neighbour's flit-buffer size. Called once by the simulator
    /// while wiring the network, before any traffic flows.
    fn set_output_credits(&mut self, port: crate::ids::Port, bytes: u32);

    /// Instantaneous occupancy gauges for telemetry sampling, if the chip
    /// exposes them. The default (`None`) opts the chip out of occupancy
    /// time series.
    fn gauges(&self) -> Option<ChipGauges> {
        None
    }

    /// The earliest cycle strictly after `now` at which this chip must be
    /// ticked again, assuming it last ticked at `now` and receives **no**
    /// further link arrivals, credits, or injections. `None` means the chip
    /// is fully drained and never needs another tick on its own.
    ///
    /// This is the event-driven fast path's contract: the simulator may skip
    /// every cycle in `(now, next_event)` without ticking the chip, provided
    /// all external inputs are also quiet, and the chip's observable state
    /// (counters patched via [`Chip::skip_quiet`] aside) must be identical
    /// to having ticked through them. Conservative answers are always safe —
    /// the default `Some(now + 1)` simply disables leaping for this chip.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Some(now + 1)
    }

    /// Informs the chip that the cycles `from..to` were provably quiet and
    /// were skipped rather than ticked. Implementations that keep per-cycle
    /// counters (e.g. idle-cycle statistics) account the skipped span here,
    /// and implementations with internal state that normally relaxes over
    /// quiet cycles (e.g. a grant pipeline draining) settle it to what a
    /// dense run would have computed by `to`, so sparse runs report
    /// identical statistics and behaviour to stepped runs.
    ///
    /// Under *sparse ticking* this is called per chip — possibly with a
    /// different `from` for every chip — each time an idle chip is about to
    /// be ticked again (or observed), not only on whole-network leaps. The
    /// default does nothing.
    fn skip_quiet(&mut self, from: Cycle, to: Cycle) {
        let _ = (from, to);
    }

    /// Wake-precision telemetry for this chip's [`Chip::next_event`]
    /// answers, if it keeps any. The default (`None`) opts the chip out of
    /// the wake-precision report.
    fn wake_stats(&self) -> Option<WakeStats> {
        None
    }

    /// Contributes this chip's monotone counters to a metrics collection,
    /// one `(name, value)` call per counter. Names are stable, namespaced
    /// (e.g. `router.tc_arrived`, `sched.key_computations`), and identical
    /// across the chips of one network so the simulator can sum them into a
    /// unified [`MetricsRegistry`] snapshot. The default contributes
    /// nothing.
    ///
    /// Counters emitted here must be *drive-mode independent*: a stepped
    /// run and an event-leaping run of the same scenario must report
    /// byte-identical totals (the metrics-equivalence suite enforces this),
    /// so per-poll or per-wake bookkeeping belongs in
    /// [`Chip::wake_stats`], not here.
    ///
    /// [`MetricsRegistry`]: https://docs.rs/rtr-metrics
    fn counters(&self, emit: &mut dyn FnMut(&'static str, u64)) {
        let _ = emit;
    }

    /// Estimated heap bytes owned by this chip beyond `size_of::<Self>()`
    /// — scheduler leaves, packet-memory slots, per-port buffers — for the
    /// simulator's bytes-per-node footprint guardrail. An estimate, not an
    /// audit: implementations count their dominant allocations (by
    /// capacity, matching what the allocator holds) and may ignore small
    /// fixed-size bookkeeping. The default reports none.
    fn heap_bytes_estimate(&self) -> usize {
        0
    }

    /// Checks the chip's internal conservation ledger (every packet
    /// accounted for exactly once), if it keeps one. Called by the
    /// simulator between cycles; a violation trips the flight recorder.
    /// The default has no ledger and always passes.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    fn check_conservation(&self) -> Result<(), String> {
        Ok(())
    }

    /// Aborts partially-received packets on every input port — the
    /// simulator calls this when the node restores from a crash, because
    /// the reassembly registers of a crashed node are undefined and the
    /// wire has lost arbitrary symbols in between. Completed packets and
    /// queued flits survive; only mid-arrival state is cleared.
    ///
    /// Returns, per input port ([`crate::ids::Port::index`] convention),
    /// the number of best-effort bytes dropped whose upstream flow-control
    /// credits the simulator must refund through the feeding links. Chips
    /// without partial-arrival state (the default) drop nothing.
    fn abort_partial_rx(&mut self) -> [u8; PORT_COUNT] {
        [0; PORT_COUNT]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::BeByte;

    #[test]
    fn begin_cycle_clears_transient_fields_only() {
        let mut io = ChipIo::new();
        io.rx[1] = Some(LinkSymbol::Be(BeByte::body(1)));
        io.credit_in[2] = 3;
        io.inject_be.push_back(BePacket::new(0, 0, vec![], Default::default()));
        io.begin_cycle();
        assert!(io.rx.iter().all(Option::is_none));
        assert_eq!(io.credit_in, [0; PORT_COUNT]);
        assert_eq!(io.inject_be.len(), 1, "injection queues persist");
    }
}
