//! Error types shared across the workspace.

/// Failure to encode or decode a packet wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketDecodeError {
    /// Fewer bytes than the format requires.
    Truncated {
        /// Bytes the format needs.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The length field disagrees with the actual byte count.
    LengthMismatch {
        /// Declared payload length.
        declared: u16,
        /// Bytes actually present after the header.
        got: usize,
    },
    /// A field value does not fit its wire encoding.
    FieldOverflow {
        /// Which field overflowed.
        field: &'static str,
        /// The offending value.
        value: u32,
    },
}

impl std::fmt::Display for PacketDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PacketDecodeError::Truncated { needed, got } => {
                write!(f, "truncated packet: needed {needed} bytes, got {got}")
            }
            PacketDecodeError::LengthMismatch { declared, got } => {
                write!(f, "length field says {declared} payload bytes, got {got}")
            }
            PacketDecodeError::FieldOverflow { field, value } => {
                write!(f, "{field} value {value} does not fit its wire field")
            }
        }
    }
}

impl std::error::Error for PacketDecodeError {}

/// An invalid router or experiment configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A parameter is outside its supported range.
    OutOfRange {
        /// Which parameter.
        parameter: &'static str,
        /// Human-readable constraint.
        constraint: &'static str,
        /// The offending value.
        value: u64,
    },
    /// Two parameters are mutually inconsistent.
    Inconsistent {
        /// Human-readable description of the conflict.
        reason: String,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::OutOfRange { parameter, constraint, value } => {
                write!(f, "{parameter} = {value} violates: {constraint}")
            }
            ConfigError::Inconsistent { reason } => {
                write!(f, "inconsistent configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = PacketDecodeError::Truncated { needed: 4, got: 1 };
        assert_eq!(e.to_string(), "truncated packet: needed 4 bytes, got 1");
        let e =
            ConfigError::OutOfRange { parameter: "clock_bits", constraint: "2..=30", value: 99 };
        assert!(e.to_string().contains("clock_bits"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PacketDecodeError>();
        assert_send_sync::<ConfigError>();
    }
}
