//! Packet formats (paper §3, Figure 3).
//!
//! * **Time-constrained** packets are small and fixed-size: a one-byte
//!   connection identifier, the one-byte `ℓ(m) + d` timestamp, and 18 data
//!   bytes — 20 bytes total with the default configuration (Figure 3a).
//! * **Best-effort** packets are variable-length wormhole packets whose
//!   header carries the remaining x and y offsets to the destination plus a
//!   length field (Figure 3b).
//!
//! Both carry a [`PacketTrace`] — simulation-only provenance used for
//! statistics; it does not exist on the wire and the routers never base
//! decisions on it.

use std::sync::Arc;

use crate::clock::LogicalTime;
use crate::error::PacketDecodeError;
use crate::ids::{ConnectionId, NodeId, Port};
use crate::time::{Cycle, Slot};

/// A reference-counted, immutable packet payload.
///
/// Payload bytes never change once a packet is built, so every copy a
/// packet goes through — the shared memory slot, the link symbol, multicast
/// fan-out, the delivery log — shares one allocation and `clone` is a
/// refcount bump instead of a byte copy. Traffic sources additionally share
/// one payload template across every packet they inject.
///
/// Dereferences to `[u8]`, so slicing, indexing and iteration work as they
/// do on a `Vec<u8>`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Payload(Arc<[u8]>);

impl Payload {
    /// The payload bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl std::ops::Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Payload {
    fn from(bytes: Vec<u8>) -> Self {
        Payload(bytes.into())
    }
}

impl From<&[u8]> for Payload {
    fn from(bytes: &[u8]) -> Self {
        Payload(Arc::from(bytes))
    }
}

impl FromIterator<u8> for Payload {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Payload(iter.into_iter().collect())
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.0 == other[..]
    }
}

impl PartialEq<Payload> for Vec<u8> {
    fn eq(&self, other: &Payload) -> bool {
        self[..] == *other.0
    }
}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        *self.0 == *other
    }
}

/// Simulation-only provenance attached to every packet.
///
/// Routers must never consult this; it exists so experiments can compute
/// end-to-end latency, deadline misses and per-connection statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PacketTrace {
    /// Node that injected the packet.
    pub source: NodeId,
    /// Intended final destination (for multicast, the trace of each copy is
    /// updated by the fan-out point).
    pub destination: NodeId,
    /// Per-source sequence number.
    pub sequence: u64,
    /// Cycle at which the source handed the packet to the router.
    pub injected_at: Cycle,
    /// Absolute (non-wrapping) logical arrival time at the source, in slots.
    /// Zero for best-effort packets.
    pub logical_arrival: Slot,
    /// Absolute end-to-end deadline in slots (`ℓ0(m) + D`). Zero (no
    /// deadline) for best-effort packets.
    pub deadline: Slot,
}

/// A fixed-size time-constrained packet (Figure 3a).
///
/// The `arrival` field is the wire timestamp: the transmitting router writes
/// its local deadline `ℓ(m) + d` there, which the downstream router reads as
/// the packet's logical arrival time `ℓ(m)` (§4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TcPacket {
    /// Connection identifier valid at the *receiving* router's table.
    pub conn: ConnectionId,
    /// Logical arrival time at the receiving router (wrapped clock value).
    pub arrival: LogicalTime,
    /// Application payload (18 bytes in the default configuration).
    pub payload: Payload,
    /// Simulation-only provenance.
    pub trace: PacketTrace,
}

impl TcPacket {
    /// Total wire size in bytes: two header bytes plus the payload.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        2 + self.payload.len()
    }

    /// Encodes the packet in the paper's exact wire format: one byte of
    /// connection identifier, one byte of timestamp, then the payload.
    ///
    /// # Errors
    ///
    /// Returns [`PacketDecodeError::FieldOverflow`] if the connection
    /// identifier or timestamp does not fit the one-byte wire fields (only
    /// possible with configurations larger than the paper's chip).
    pub fn to_wire(&self) -> Result<Vec<u8>, PacketDecodeError> {
        let conn = u8::try_from(self.conn.0).map_err(|_| PacketDecodeError::FieldOverflow {
            field: "connection id",
            value: u32::from(self.conn.0),
        })?;
        let ts = u8::try_from(self.arrival.raw()).map_err(|_| {
            PacketDecodeError::FieldOverflow { field: "timestamp", value: self.arrival.raw() }
        })?;
        let mut bytes = Vec::with_capacity(self.wire_len());
        bytes.push(conn);
        bytes.push(ts);
        bytes.extend_from_slice(&self.payload);
        Ok(bytes)
    }

    /// Decodes a packet from the paper's wire format.
    ///
    /// The trace is zeroed: wire bytes carry no provenance.
    ///
    /// # Errors
    ///
    /// Returns [`PacketDecodeError::Truncated`] if fewer than two header
    /// bytes are present.
    pub fn from_wire(
        bytes: &[u8],
        clock: &crate::clock::SlotClock,
    ) -> Result<Self, PacketDecodeError> {
        if bytes.len() < 2 {
            return Err(PacketDecodeError::Truncated { needed: 2, got: bytes.len() });
        }
        Ok(TcPacket {
            conn: ConnectionId(u16::from(bytes[0])),
            arrival: clock.wrap(u64::from(bytes[1])),
            payload: Payload::from(&bytes[2..]),
            trace: PacketTrace::default(),
        })
    }
}

/// The best-effort packet header (Figure 3b): remaining x/y offsets and the
/// payload length.
///
/// Offsets are signed hop counts; dimension-ordered routing exhausts the x
/// offset before the y offset, and both reach zero at the destination (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BeHeader {
    /// Remaining hops in x (positive = towards +x).
    pub x_off: i8,
    /// Remaining hops in y (positive = towards +y).
    pub y_off: i8,
    /// Payload length in bytes (excludes the 4 header bytes).
    pub length: u16,
}

/// Number of wire bytes in a best-effort header.
pub const BE_HEADER_BYTES: usize = 4;

impl BeHeader {
    /// Encodes the header as 4 wire bytes.
    #[must_use]
    pub fn to_wire(self) -> [u8; BE_HEADER_BYTES] {
        let len = self.length.to_le_bytes();
        [self.x_off as u8, self.y_off as u8, len[0], len[1]]
    }

    /// Decodes a header from its 4 wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PacketDecodeError::Truncated`] if fewer than 4 bytes are
    /// given.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, PacketDecodeError> {
        if bytes.len() < BE_HEADER_BYTES {
            return Err(PacketDecodeError::Truncated { needed: BE_HEADER_BYTES, got: bytes.len() });
        }
        Ok(BeHeader {
            x_off: bytes[0] as i8,
            y_off: bytes[1] as i8,
            length: u16::from_le_bytes([bytes[2], bytes[3]]),
        })
    }

    /// The dimension-ordered routing decision for this header: the output
    /// port to take and the header to forward (with the consumed offset
    /// stepped towards zero).
    ///
    /// Routes completely in x before turning to y; a fully-zero offset pair
    /// means the packet has reached its destination ([`Port::Local`], header
    /// unchanged). This ordering is what makes the scheme deadlock-free in a
    /// square mesh (§3.3).
    #[must_use]
    pub fn dimension_ordered_step(self) -> (Port, BeHeader) {
        use crate::ids::Direction::*;
        if self.x_off > 0 {
            (Port::Dir(XPlus), BeHeader { x_off: self.x_off - 1, ..self })
        } else if self.x_off < 0 {
            (Port::Dir(XMinus), BeHeader { x_off: self.x_off + 1, ..self })
        } else if self.y_off > 0 {
            (Port::Dir(YPlus), BeHeader { y_off: self.y_off - 1, ..self })
        } else if self.y_off < 0 {
            (Port::Dir(YMinus), BeHeader { y_off: self.y_off + 1, ..self })
        } else {
            (Port::Local, self)
        }
    }

    /// Total remaining hop count.
    #[must_use]
    pub fn remaining_hops(self) -> u32 {
        self.x_off.unsigned_abs() as u32 + self.y_off.unsigned_abs() as u32
    }
}

/// A variable-length best-effort packet (Figure 3b).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BePacket {
    /// Routing header.
    pub header: BeHeader,
    /// Application payload.
    pub payload: Payload,
    /// Simulation-only provenance.
    pub trace: PacketTrace,
}

impl BePacket {
    /// Builds a packet, setting the header length from the payload.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds the 16-bit length field.
    #[must_use]
    pub fn new(x_off: i8, y_off: i8, payload: impl Into<Payload>, trace: PacketTrace) -> Self {
        let payload = payload.into();
        let length = u16::try_from(payload.len()).expect("payload exceeds 16-bit length field");
        BePacket { header: BeHeader { x_off, y_off, length }, payload, trace }
    }

    /// Total wire size: header plus payload.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        BE_HEADER_BYTES + self.payload.len()
    }

    /// Encodes header and payload into wire bytes.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(self.wire_len());
        self.to_wire_into(&mut bytes);
        bytes
    }

    /// Encodes header and payload into a caller-supplied buffer (cleared
    /// first), so per-packet staging can reuse one allocation.
    pub fn to_wire_into(&self, bytes: &mut Vec<u8>) {
        bytes.clear();
        bytes.extend_from_slice(&self.header.to_wire());
        bytes.extend_from_slice(&self.payload);
    }

    /// Decodes a packet from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PacketDecodeError::Truncated`] if the bytes are shorter than
    /// the header, or [`PacketDecodeError::LengthMismatch`] if the length
    /// field disagrees with the byte count.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, PacketDecodeError> {
        let header = BeHeader::from_wire(bytes)?;
        let body = &bytes[BE_HEADER_BYTES..];
        if body.len() != usize::from(header.length) {
            return Err(PacketDecodeError::LengthMismatch {
                declared: header.length,
                got: body.len(),
            });
        }
        Ok(BePacket { header, payload: Payload::from(body), trace: PacketTrace::default() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SlotClock;
    use crate::ids::Direction;
    use proptest::prelude::*;

    fn trace() -> PacketTrace {
        PacketTrace {
            source: NodeId(1),
            destination: NodeId(2),
            sequence: 9,
            injected_at: 100,
            logical_arrival: 5,
            deadline: 25,
        }
    }

    #[test]
    fn tc_packet_is_20_bytes_with_default_config() {
        let p = TcPacket {
            conn: ConnectionId(7),
            arrival: SlotClock::new(8).wrap(42),
            payload: vec![0xAB; 18].into(),
            trace: trace(),
        };
        assert_eq!(p.wire_len(), 20);
        let wire = p.to_wire().unwrap();
        assert_eq!(wire.len(), 20);
        assert_eq!(wire[0], 7);
        assert_eq!(wire[1], 42);
    }

    #[test]
    fn tc_wire_round_trip() {
        let clock = SlotClock::new(8);
        let p = TcPacket {
            conn: ConnectionId(255),
            arrival: clock.wrap(255),
            payload: (0..18).collect(),
            trace: PacketTrace::default(),
        };
        let decoded = TcPacket::from_wire(&p.to_wire().unwrap(), &clock).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn tc_oversized_conn_id_fails_to_encode() {
        let p = TcPacket {
            conn: ConnectionId(256),
            arrival: SlotClock::new(8).wrap(0),
            payload: vec![].into(),
            trace: PacketTrace::default(),
        };
        assert!(matches!(
            p.to_wire(),
            Err(PacketDecodeError::FieldOverflow { field: "connection id", .. })
        ));
    }

    #[test]
    fn tc_truncated_decode_fails() {
        let clock = SlotClock::new(8);
        assert!(matches!(
            TcPacket::from_wire(&[1], &clock),
            Err(PacketDecodeError::Truncated { needed: 2, got: 1 })
        ));
    }

    #[test]
    fn be_header_round_trip() {
        let h = BeHeader { x_off: -3, y_off: 2, length: 513 };
        assert_eq!(BeHeader::from_wire(&h.to_wire()).unwrap(), h);
    }

    #[test]
    fn be_packet_round_trip() {
        let p = BePacket::new(1, -2, vec![9, 8, 7], trace());
        let mut q = BePacket::from_wire(&p.to_wire()).unwrap();
        q.trace = trace();
        assert_eq!(q, p);
    }

    #[test]
    fn be_length_mismatch_detected() {
        let mut wire = BePacket::new(0, 0, vec![1, 2, 3], PacketTrace::default()).to_wire();
        wire.pop();
        assert!(matches!(
            BePacket::from_wire(&wire),
            Err(PacketDecodeError::LengthMismatch { declared: 3, got: 2 })
        ));
    }

    #[test]
    fn dor_routes_x_before_y() {
        let h = BeHeader { x_off: 2, y_off: -1, length: 0 };
        let (p1, h1) = h.dimension_ordered_step();
        assert_eq!(p1, Port::Dir(Direction::XPlus));
        assert_eq!(h1.x_off, 1);
        let (p2, h2) = BeHeader { x_off: 0, y_off: -1, length: 0 }.dimension_ordered_step();
        assert_eq!(p2, Port::Dir(Direction::YMinus));
        assert_eq!(h2.y_off, 0);
        let (p3, _) = h2.dimension_ordered_step();
        assert_eq!(p3, Port::Local);
    }

    proptest! {
        /// Repeatedly applying the DOR step consumes exactly
        /// `|x| + |y|` hops and ends at the local port with zero offsets.
        #[test]
        fn dor_terminates_at_destination(x in -8i8..=8, y in -8i8..=8) {
            let mut h = BeHeader { x_off: x, y_off: y, length: 0 };
            let mut hops = 0u32;
            loop {
                let (port, next) = h.dimension_ordered_step();
                if port == Port::Local {
                    prop_assert_eq!(h.x_off, 0);
                    prop_assert_eq!(h.y_off, 0);
                    break;
                }
                // x must be exhausted before any y hop is taken.
                if matches!(port, Port::Dir(Direction::YPlus) | Port::Dir(Direction::YMinus)) {
                    prop_assert_eq!(h.x_off, 0);
                }
                h = next;
                hops += 1;
                prop_assert!(hops <= 32, "routing must terminate");
            }
            prop_assert_eq!(hops, x.unsigned_abs() as u32 + y.unsigned_abs() as u32);
        }

        /// Wire round-trips preserve every field for arbitrary payloads.
        #[test]
        fn be_wire_round_trip_arbitrary(x in any::<i8>(), y in any::<i8>(), payload in proptest::collection::vec(any::<u8>(), 0..256)) {
            let p = BePacket::new(x, y, payload, PacketTrace::default());
            prop_assert_eq!(BePacket::from_wire(&p.to_wire()).unwrap(), p);
        }
    }
}
