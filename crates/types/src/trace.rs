//! Cycle-accurate event tracing for the router datapaths.
//!
//! Every architecturally interesting step in a packet's life — injection,
//! arrival, memory-slot allocation, scheduler selection, transmission,
//! cut-through, drop, delivery — can be emitted as a [`TraceEvent`], stamped
//! with the cycle and node into a [`TraceRecord`], and handed to a
//! [`TraceSink`]. Routers emit events only when built with their `trace`
//! cargo feature *and* given a sink, so the disabled path compiles to
//! nothing and costs nothing.
//!
//! Records serialise to JSON Lines (one object per line) via
//! [`TraceRecord::to_jsonl`] / [`TraceRecord::from_jsonl`]. The codec is
//! hand-rolled and self-contained: the format is flat, the keys are fixed,
//! and replay tools (`trace_dump`) must parse traces without any feature
//! flags or external crates.
//!
//! Time-constrained events carry the packet's simulation-only provenance
//! (`src` node and per-source `seq`) so a replay tool can stitch the exact
//! per-packet chain `inject → arrive → select → transmit → … → deliver`
//! across hops. Slack values are *signed slots*: the hop deadline
//! `ℓ(m) + d` minus the scheduler time at transmission (negative = late).
//!
//! # Example
//!
//! ```
//! use rtr_types::ids::{ConnectionId, NodeId};
//! use rtr_types::trace::{TraceEvent, TraceRecord};
//!
//! let rec = TraceRecord {
//!     cycle: 84,
//!     node: NodeId(3),
//!     event: TraceEvent::TcTransmit {
//!         conn: ConnectionId(7),
//!         port: 1,
//!         early: false,
//!         slack: 2,
//!         src: NodeId(0),
//!         seq: 5,
//!     },
//! };
//! let line = rec.to_jsonl();
//! assert_eq!(TraceRecord::from_jsonl(&line).unwrap(), rec);
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::ids::{ConnectionId, NodeId};
use crate::time::Cycle;

/// Which arbitration queue a scheduler selection came from (§3.2 ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueClass {
    /// An on-time time-constrained packet won earliest-deadline-first.
    OnTimeEdf,
    /// An early time-constrained packet filled an idle cycle within the
    /// output's horizon.
    EarlyWithinHorizon,
    /// A best-effort byte won the round-robin over the input ports.
    BeRoundRobin,
}

impl QueueClass {
    fn tag(self) -> &'static str {
        match self {
            QueueClass::OnTimeEdf => "on_time_edf",
            QueueClass::EarlyWithinHorizon => "early_horizon",
            QueueClass::BeRoundRobin => "be_rr",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "on_time_edf" => QueueClass::OnTimeEdf,
            "early_horizon" => QueueClass::EarlyWithinHorizon,
            "be_rr" => QueueClass::BeRoundRobin,
            _ => return None,
        })
    }
}

/// Why a time-constrained packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// No live connection-table entry for the packet's identifier.
    NoConnection,
    /// The shared packet memory had no idle slot.
    NoBuffer,
    /// The injected packet violated the fixed wire format.
    Malformed,
    /// The packet's connection was torn down while it was in flight; the
    /// drop is an accounted teardown abort, not a routing error.
    TornDown,
}

impl DropReason {
    fn tag(self) -> &'static str {
        match self {
            DropReason::NoConnection => "no_conn",
            DropReason::NoBuffer => "no_buffer",
            DropReason::Malformed => "malformed",
            DropReason::TornDown => "torn_down",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "no_conn" => DropReason::NoConnection,
            "no_buffer" => DropReason::NoBuffer,
            "malformed" => DropReason::Malformed,
            "torn_down" => DropReason::TornDown,
            _ => return None,
        })
    }
}

/// One step in a packet's life through a router.
///
/// `port` fields are dense [`crate::ids::Port::index`] values (0 = local).
/// `src`/`seq` echo the packet's [`crate::packet::PacketTrace`] provenance
/// so events of the same packet correlate across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A well-formed time-constrained packet entered at the injection port.
    TcInject {
        /// Connection identifier at the injecting router's table.
        conn: ConnectionId,
        /// Injecting node (provenance).
        src: NodeId,
        /// Per-source sequence number (provenance).
        seq: u64,
    },
    /// A time-constrained packet finished arriving on an input port.
    TcArrive {
        /// Connection identifier before table lookup.
        conn: ConnectionId,
        /// Input port index.
        port: u8,
        /// Provenance source node.
        src: NodeId,
        /// Provenance sequence number.
        seq: u64,
    },
    /// The packet was stored into a shared-memory slot from the idle FIFO.
    SlotAlloc {
        /// Rewritten (outgoing) connection identifier.
        conn: ConnectionId,
        /// Slot address.
        slot: u16,
        /// Provenance source node.
        src: NodeId,
        /// Provenance sequence number.
        seq: u64,
    },
    /// A shared-memory slot returned to the idle FIFO.
    SlotFree {
        /// Slot address.
        slot: u16,
    },
    /// The link scheduler picked a packet (or best-effort byte) for an
    /// output port.
    SchedSelect {
        /// Connection identifier of the winning packet (0 for best-effort).
        conn: ConnectionId,
        /// Output port index.
        port: u8,
        /// Which arbitration queue won.
        class: QueueClass,
        /// Provenance source node.
        src: NodeId,
        /// Provenance sequence number.
        seq: u64,
    },
    /// First byte of a time-constrained packet left an output port.
    TcTransmit {
        /// Outgoing connection identifier.
        conn: ConnectionId,
        /// Output port index.
        port: u8,
        /// Whether this was an early (within-horizon) transmission.
        early: bool,
        /// Hop deadline minus scheduler time, in slots (negative = late).
        slack: i64,
        /// Provenance source node.
        src: NodeId,
        /// Provenance sequence number.
        seq: u64,
    },
    /// The packet cut through to an output without being buffered (§7
    /// virtual cut-through extension).
    TcCutThrough {
        /// Outgoing connection identifier.
        conn: ConnectionId,
        /// Output port index.
        port: u8,
        /// Provenance source node.
        src: NodeId,
        /// Provenance sequence number.
        seq: u64,
    },
    /// A time-constrained packet was dropped.
    TcDrop {
        /// Connection identifier at the dropping router.
        conn: ConnectionId,
        /// Why it was dropped.
        reason: DropReason,
        /// Provenance source node.
        src: NodeId,
        /// Provenance sequence number.
        seq: u64,
    },
    /// A time-constrained packet was delivered through the reception port.
    TcDeliver {
        /// Connection identifier at the delivering router.
        conn: ConnectionId,
        /// Hop deadline minus scheduler time at delivery, in slots.
        slack: i64,
        /// Provenance source node.
        src: NodeId,
        /// Provenance sequence number.
        seq: u64,
    },
    /// A best-effort packet's head byte won the round-robin for an output
    /// (one event per packet per hop, not per byte).
    BeSelect {
        /// Output port index.
        port: u8,
        /// Input port index the packet is streaming from.
        input: u8,
    },
    /// A best-effort packet was reassembled and delivered locally.
    BeDeliver {
        /// Provenance source node.
        src: NodeId,
        /// Provenance sequence number.
        seq: u64,
    },
}

impl TraceEvent {
    /// The event's JSONL tag (the `"ev"` field).
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::TcInject { .. } => "tc_inject",
            TraceEvent::TcArrive { .. } => "tc_arrive",
            TraceEvent::SlotAlloc { .. } => "slot_alloc",
            TraceEvent::SlotFree { .. } => "slot_free",
            TraceEvent::SchedSelect { .. } => "sched_select",
            TraceEvent::TcTransmit { .. } => "tc_transmit",
            TraceEvent::TcCutThrough { .. } => "tc_cut_through",
            TraceEvent::TcDrop { .. } => "tc_drop",
            TraceEvent::TcDeliver { .. } => "tc_deliver",
            TraceEvent::BeSelect { .. } => "be_select",
            TraceEvent::BeDeliver { .. } => "be_deliver",
        }
    }

    /// The provenance `(src, seq)` pair, for events that carry one.
    #[must_use]
    pub fn packet_id(&self) -> Option<(NodeId, u64)> {
        match *self {
            TraceEvent::TcInject { src, seq, .. }
            | TraceEvent::TcArrive { src, seq, .. }
            | TraceEvent::SlotAlloc { src, seq, .. }
            | TraceEvent::SchedSelect { src, seq, .. }
            | TraceEvent::TcTransmit { src, seq, .. }
            | TraceEvent::TcCutThrough { src, seq, .. }
            | TraceEvent::TcDrop { src, seq, .. }
            | TraceEvent::TcDeliver { src, seq, .. }
            | TraceEvent::BeDeliver { src, seq } => Some((src, seq)),
            TraceEvent::SlotFree { .. } | TraceEvent::BeSelect { .. } => None,
        }
    }
}

/// A [`TraceEvent`] stamped with when and where it happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation cycle of the event.
    pub cycle: Cycle,
    /// Node whose router emitted the event.
    pub node: NodeId,
    /// What happened.
    pub event: TraceEvent,
}

/// A malformed JSONL trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// What was wrong with the line.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad trace line: {}", self.message)
    }
}

impl std::error::Error for TraceParseError {}

fn err(message: impl Into<String>) -> TraceParseError {
    TraceParseError { message: message.into() }
}

impl TraceRecord {
    /// Encodes the record as one JSON Lines object (no trailing newline).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write;
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"cycle\":{},\"node\":{},\"ev\":\"{}\"",
            self.cycle,
            self.node.0,
            self.event.tag()
        );
        match self.event {
            TraceEvent::TcInject { conn, src, seq } => {
                let _ = write!(s, ",\"conn\":{},\"src\":{},\"seq\":{seq}", conn.0, src.0);
            }
            TraceEvent::TcArrive { conn, port, src, seq } => {
                let _ = write!(
                    s,
                    ",\"conn\":{},\"port\":{port},\"src\":{},\"seq\":{seq}",
                    conn.0, src.0
                );
            }
            TraceEvent::SlotAlloc { conn, slot, src, seq } => {
                let _ = write!(
                    s,
                    ",\"conn\":{},\"slot\":{slot},\"src\":{},\"seq\":{seq}",
                    conn.0, src.0
                );
            }
            TraceEvent::SlotFree { slot } => {
                let _ = write!(s, ",\"slot\":{slot}");
            }
            TraceEvent::SchedSelect { conn, port, class, src, seq } => {
                let _ = write!(
                    s,
                    ",\"conn\":{},\"port\":{port},\"class\":\"{}\",\"src\":{},\"seq\":{seq}",
                    conn.0,
                    class.tag(),
                    src.0
                );
            }
            TraceEvent::TcTransmit { conn, port, early, slack, src, seq } => {
                let _ = write!(
                    s,
                    ",\"conn\":{},\"port\":{port},\"early\":{early},\"slack\":{slack},\
                     \"src\":{},\"seq\":{seq}",
                    conn.0, src.0
                );
            }
            TraceEvent::TcCutThrough { conn, port, src, seq } => {
                let _ = write!(
                    s,
                    ",\"conn\":{},\"port\":{port},\"src\":{},\"seq\":{seq}",
                    conn.0, src.0
                );
            }
            TraceEvent::TcDrop { conn, reason, src, seq } => {
                let _ = write!(
                    s,
                    ",\"conn\":{},\"reason\":\"{}\",\"src\":{},\"seq\":{seq}",
                    conn.0,
                    reason.tag(),
                    src.0
                );
            }
            TraceEvent::TcDeliver { conn, slack, src, seq } => {
                let _ = write!(
                    s,
                    ",\"conn\":{},\"slack\":{slack},\"src\":{},\"seq\":{seq}",
                    conn.0, src.0
                );
            }
            TraceEvent::BeSelect { port, input } => {
                let _ = write!(s, ",\"port\":{port},\"input\":{input}");
            }
            TraceEvent::BeDeliver { src, seq } => {
                let _ = write!(s, ",\"src\":{},\"seq\":{seq}", src.0);
            }
        }
        s.push('}');
        s
    }

    /// Decodes a record from one JSON Lines object.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceParseError`] describing the first malformation
    /// found (not valid JSON, unknown tag, missing or out-of-range field).
    pub fn from_jsonl(line: &str) -> Result<TraceRecord, TraceParseError> {
        let fields = parse_flat_object(line)?;
        let get = |key: &str| -> Result<&JsonValue, TraceParseError> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| err(format!("missing field \"{key}\"")))
        };
        let get_u64 = |key: &str| -> Result<u64, TraceParseError> {
            match get(key)? {
                JsonValue::Int(v) if *v >= 0 => Ok(*v as u64),
                other => {
                    Err(err(format!("field \"{key}\" is not a non-negative integer: {other:?}")))
                }
            }
        };
        let get_i64 = |key: &str| -> Result<i64, TraceParseError> {
            match get(key)? {
                JsonValue::Int(v) => Ok(*v),
                other => Err(err(format!("field \"{key}\" is not an integer: {other:?}"))),
            }
        };
        let get_bool = |key: &str| -> Result<bool, TraceParseError> {
            match get(key)? {
                JsonValue::Bool(b) => Ok(*b),
                other => Err(err(format!("field \"{key}\" is not a boolean: {other:?}"))),
            }
        };
        let get_str = |key: &str| -> Result<&str, TraceParseError> {
            match get(key)? {
                JsonValue::Str(s) => Ok(s.as_str()),
                other => Err(err(format!("field \"{key}\" is not a string: {other:?}"))),
            }
        };
        let get_u16 = |key: &str| -> Result<u16, TraceParseError> {
            u16::try_from(get_u64(key)?).map_err(|_| err(format!("field \"{key}\" exceeds u16")))
        };
        let get_u8 = |key: &str| -> Result<u8, TraceParseError> {
            u8::try_from(get_u64(key)?).map_err(|_| err(format!("field \"{key}\" exceeds u8")))
        };
        let conn = || Ok::<_, TraceParseError>(ConnectionId(get_u16("conn")?));
        let src = || Ok::<_, TraceParseError>(NodeId(get_u16("src")?));

        let cycle = get_u64("cycle")?;
        let node = NodeId(get_u16("node")?);
        let tag = get_str("ev")?;
        let event = match tag {
            "tc_inject" => {
                TraceEvent::TcInject { conn: conn()?, src: src()?, seq: get_u64("seq")? }
            }
            "tc_arrive" => TraceEvent::TcArrive {
                conn: conn()?,
                port: get_u8("port")?,
                src: src()?,
                seq: get_u64("seq")?,
            },
            "slot_alloc" => TraceEvent::SlotAlloc {
                conn: conn()?,
                slot: get_u16("slot")?,
                src: src()?,
                seq: get_u64("seq")?,
            },
            "slot_free" => TraceEvent::SlotFree { slot: get_u16("slot")? },
            "sched_select" => TraceEvent::SchedSelect {
                conn: conn()?,
                port: get_u8("port")?,
                class: QueueClass::from_tag(get_str("class")?)
                    .ok_or_else(|| err("unknown queue class"))?,
                src: src()?,
                seq: get_u64("seq")?,
            },
            "tc_transmit" => TraceEvent::TcTransmit {
                conn: conn()?,
                port: get_u8("port")?,
                early: get_bool("early")?,
                slack: get_i64("slack")?,
                src: src()?,
                seq: get_u64("seq")?,
            },
            "tc_cut_through" => TraceEvent::TcCutThrough {
                conn: conn()?,
                port: get_u8("port")?,
                src: src()?,
                seq: get_u64("seq")?,
            },
            "tc_drop" => TraceEvent::TcDrop {
                conn: conn()?,
                reason: DropReason::from_tag(get_str("reason")?)
                    .ok_or_else(|| err("unknown drop reason"))?,
                src: src()?,
                seq: get_u64("seq")?,
            },
            "tc_deliver" => TraceEvent::TcDeliver {
                conn: conn()?,
                slack: get_i64("slack")?,
                src: src()?,
                seq: get_u64("seq")?,
            },
            "be_select" => TraceEvent::BeSelect { port: get_u8("port")?, input: get_u8("input")? },
            "be_deliver" => TraceEvent::BeDeliver { src: src()?, seq: get_u64("seq")? },
            other => return Err(err(format!("unknown event tag \"{other}\""))),
        };
        Ok(TraceRecord { cycle, node, event })
    }
}

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Int(i64),
    Bool(bool),
    Str(String),
}

/// Parses a flat JSON object of integer / boolean / escape-free string
/// values — exactly the shape [`TraceRecord::to_jsonl`] emits.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, TraceParseError> {
    let line = line.trim();
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| err("not a JSON object"))?;
    let mut fields = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        // Key.
        let after_quote = rest.strip_prefix('"').ok_or_else(|| err("expected a quoted key"))?;
        let close = after_quote.find('"').ok_or_else(|| err("unterminated key"))?;
        let key = &after_quote[..close];
        rest = after_quote[close + 1..].trim_start();
        rest = rest.strip_prefix(':').ok_or_else(|| err("expected ':'"))?.trim_start();
        // Value.
        let (value, remainder) = if let Some(after) = rest.strip_prefix('"') {
            let close = after.find('"').ok_or_else(|| err("unterminated string"))?;
            let body = &after[..close];
            if body.contains('\\') {
                return Err(err("escape sequences are not supported"));
            }
            (JsonValue::Str(body.to_string()), &after[close + 1..])
        } else if let Some(after) = rest.strip_prefix("true") {
            (JsonValue::Bool(true), after)
        } else if let Some(after) = rest.strip_prefix("false") {
            (JsonValue::Bool(false), after)
        } else {
            let end = rest.find(|c: char| c != '-' && !c.is_ascii_digit()).unwrap_or(rest.len());
            let num: i64 =
                rest[..end].parse().map_err(|_| err(format!("bad number {:?}", &rest[..end])))?;
            (JsonValue::Int(num), &rest[end..])
        };
        fields.push((key.to_string(), value));
        rest = remainder.trim_start();
        match rest.strip_prefix(',') {
            Some(after) => rest = after.trim_start(),
            None if rest.is_empty() => break,
            None => return Err(err("expected ',' between fields")),
        }
    }
    Ok(fields)
}

/// Receives trace records as the simulation emits them.
///
/// `Debug` is a supertrait so routers holding a `dyn TraceSink` can stay
/// `#[derive(Debug)]`.
pub trait TraceSink: std::fmt::Debug {
    /// Handles one record.
    fn record(&mut self, rec: &TraceRecord);

    /// Flushes buffered output, if any.
    fn flush(&mut self) {}
}

/// A sink shareable between the routers of a mesh. `Arc<Mutex<…>>` so
/// routers stay `Send` and the simulator may tick chips on worker threads;
/// with tracing enabled the sink lock serialises emission, so parallel runs
/// should normally trace to per-node sinks or run serially.
pub type SharedTraceSink = Arc<Mutex<dyn TraceSink + Send>>;

/// Wraps a concrete sink for sharing across routers.
pub fn shared<S: TraceSink + Send + 'static>(sink: S) -> Arc<Mutex<S>> {
    Arc::new(Mutex::new(sink))
}

/// A bounded in-memory ring of the most recent records.
///
/// When full, the oldest record is discarded and counted in
/// [`RingSink::dropped`] — tracing never grows without bound.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<TraceRecord>,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink { capacity, buf: VecDeque::with_capacity(capacity.min(4096)), dropped: 0 }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Number of retained records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the ring, yielding the retained records oldest first.
    #[must_use]
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.buf.into()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: &TraceRecord) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(*rec);
    }
}

/// Streams records to a writer as JSON Lines.
pub struct JsonlSink<W: std::io::Write> {
    writer: std::io::BufWriter<W>,
    written: u64,
}

impl<W: std::io::Write> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").field("written", &self.written).finish_non_exhaustive()
    }
}

impl JsonlSink<std::fs::File> {
    /// Creates (truncating) a trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(JsonlSink::new(std::fs::File::create(path)?))
    }
}

impl<W: std::io::Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer: std::io::BufWriter::new(writer), written: 0 }
    }

    /// Records written so far.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.written
    }
}

impl<W: std::io::Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, rec: &TraceRecord) {
        use std::io::Write;
        // I/O errors abort the run loudly: a silently truncated trace is
        // worse than no trace.
        writeln!(self.writer, "{}", rec.to_jsonl()).expect("trace write failed");
        self.written += 1;
    }

    fn flush(&mut self) {
        use std::io::Write;
        self.writer.flush().expect("trace flush failed");
    }
}

impl<W: std::io::Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        use std::io::Write;
        let _ = self.writer.flush();
    }
}

/// Parses a whole JSONL trace, skipping blank lines.
///
/// # Errors
///
/// Returns the first line's parse error, annotated with its line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, TraceParseError> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = TraceRecord::from_jsonl(line)
            .map_err(|e| err(format!("line {}: {}", i + 1, e.message)))?;
        records.push(rec);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        let n = NodeId(2);
        let c = ConnectionId(7);
        vec![
            TraceRecord {
                cycle: 0,
                node: n,
                event: TraceEvent::TcInject { conn: c, src: n, seq: 1 },
            },
            TraceRecord {
                cycle: 5,
                node: n,
                event: TraceEvent::TcArrive { conn: c, port: 0, src: n, seq: 1 },
            },
            TraceRecord {
                cycle: 6,
                node: n,
                event: TraceEvent::SlotAlloc { conn: c, slot: 3, src: n, seq: 1 },
            },
            TraceRecord { cycle: 30, node: n, event: TraceEvent::SlotFree { slot: 3 } },
            TraceRecord {
                cycle: 30,
                node: n,
                event: TraceEvent::SchedSelect {
                    conn: c,
                    port: 1,
                    class: QueueClass::OnTimeEdf,
                    src: n,
                    seq: 1,
                },
            },
            TraceRecord {
                cycle: 30,
                node: n,
                event: TraceEvent::TcTransmit {
                    conn: c,
                    port: 1,
                    early: true,
                    slack: -4,
                    src: n,
                    seq: 1,
                },
            },
            TraceRecord {
                cycle: 31,
                node: n,
                event: TraceEvent::TcCutThrough { conn: c, port: 2, src: n, seq: 2 },
            },
            TraceRecord {
                cycle: 32,
                node: n,
                event: TraceEvent::TcDrop { conn: c, reason: DropReason::NoBuffer, src: n, seq: 3 },
            },
            TraceRecord {
                cycle: 60,
                node: n,
                event: TraceEvent::TcDeliver { conn: c, slack: 2, src: n, seq: 1 },
            },
            TraceRecord { cycle: 61, node: n, event: TraceEvent::BeSelect { port: 1, input: 3 } },
            TraceRecord { cycle: 70, node: n, event: TraceEvent::BeDeliver { src: n, seq: 9 } },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_event_kind() {
        for rec in sample_records() {
            let line = rec.to_jsonl();
            assert_eq!(TraceRecord::from_jsonl(&line).unwrap(), rec, "line: {line}");
        }
    }

    #[test]
    fn parse_jsonl_handles_blank_lines_and_reports_line_numbers() {
        let recs = sample_records();
        let mut text = String::new();
        for r in &recs {
            text.push_str(&r.to_jsonl());
            text.push('\n');
            text.push('\n'); // blank line between records
        }
        assert_eq!(parse_jsonl(&text).unwrap(), recs);
        let good = recs[0].to_jsonl();
        let e = parse_jsonl(&format!("{good}\nnot json\n")).unwrap_err();
        assert!(e.message.starts_with("line 2:"), "{e}");
    }

    #[test]
    fn parser_rejects_malformations() {
        for bad in [
            "",
            "[]",
            "{\"cycle\":1,\"node\":0,\"ev\":\"nope\"}",
            "{\"cycle\":1,\"node\":0}",
            "{\"cycle\":-1,\"node\":0,\"ev\":\"slot_free\",\"slot\":1}",
            "{\"cycle\":1,\"node\":99999,\"ev\":\"slot_free\",\"slot\":1}",
            "{\"cycle\":1 \"node\":0}",
        ] {
            assert!(TraceRecord::from_jsonl(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn ring_sink_bounds_memory_and_counts_evictions() {
        let mut ring = RingSink::new(3);
        for rec in sample_records() {
            ring.record(&rec);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), sample_records().len() as u64 - 3);
        let kept: Vec<TraceRecord> = ring.into_records();
        assert_eq!(&kept[..], &sample_records()[sample_records().len() - 3..]);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut out = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut out);
            for rec in sample_records() {
                sink.record(&rec);
            }
            sink.flush();
            assert_eq!(sink.written(), sample_records().len() as u64);
        }
        let text = String::from_utf8(out).unwrap();
        assert_eq!(parse_jsonl(&text).unwrap(), sample_records());
    }

    #[test]
    fn packet_id_exposes_provenance() {
        let recs = sample_records();
        assert_eq!(recs[0].event.packet_id(), Some((NodeId(2), 1)));
        assert_eq!(recs[3].event.packet_id(), None, "slot_free has no provenance");
        assert_eq!(recs[9].event.packet_id(), None, "be_select has no provenance");
    }

    #[test]
    fn shared_sink_is_usable_through_dyn_trait() {
        let ring = shared(RingSink::new(8));
        let as_dyn: SharedTraceSink = ring.clone();
        as_dyn.lock().unwrap().record(&sample_records()[0]);
        assert_eq!(ring.lock().unwrap().len(), 1);
    }
}
